"""Backend side of the pay-per-query system: grants, reconciliation, revenue.

The :class:`BillingBackend` is the cloud counterpart of the on-device
:class:`~repro.billing.metering.UsageLedger`: it provisions per-device keys,
sells prepaid packages (issuing signed grants), and at sync time verifies the
uploaded ledger — detecting tampering (broken MAC chain), over-use (more
entries than granted), rollback/replay (fewer entries than previously seen)
— and accumulates revenue and usage reports.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .metering import LedgerEntry, PricingPlan, QuotaGrant, UsageLedger, entry_payload

__all__ = ["ReconciliationResult", "BillingBackend"]


@dataclass
class ReconciliationResult:
    """Outcome of verifying one device's uploaded usage ledger."""

    device_id: str
    accepted: bool
    n_entries: int
    n_new_entries: int
    issues: List[str] = field(default_factory=list)
    billed_amount: float = 0.0
    n_new_queries: int = 0


class BillingBackend:
    """Issues quota grants and reconciles device usage ledgers."""

    def __init__(self, master_key: bytes = b"tinymlops-billing-master") -> None:
        self._master_key = bytes(master_key)
        self.plans: Dict[str, PricingPlan] = {}
        self.device_keys: Dict[str, bytes] = {}
        self.issued_grants: Dict[str, QuotaGrant] = {}
        self.synced_counts: Dict[str, int] = {}
        # Per-device, per-model cumulative query totals at the last accepted
        # sync.  Billing works on deltas of these totals (not on entry
        # slices), so rewriting the count of an already-synced batch entry
        # cannot smuggle queries past metering.
        self.synced_queries: Dict[str, Dict[str, int]] = {}
        self.revenue: float = 0.0
        self.reconciliations: List[ReconciliationResult] = []
        self._grant_counter = 0

    # -- provisioning ------------------------------------------------------
    def register_plan(self, plan: PricingPlan) -> None:
        """Register the pricing plan of a model."""
        self.plans[plan.model_name] = plan

    def enroll_device(self, device_id: str) -> bytes:
        """Provision (derive) the per-device metering key."""
        key = hmac.new(self._master_key, f"device:{device_id}".encode(), hashlib.sha256).digest()
        self.device_keys[device_id] = key
        return key

    def signing_key(self) -> bytes:
        """Key used to sign quota grants (shared with devices for verification)."""
        return hmac.new(self._master_key, b"grant-signing", hashlib.sha256).digest()

    # -- sales --------------------------------------------------------------
    def sell_package(self, device_id: str, model_name: str, n_queries: int) -> QuotaGrant:
        """Sell a prepaid package: records revenue and returns the signed grant."""
        if device_id not in self.device_keys:
            raise KeyError(f"device {device_id!r} is not enrolled")
        plan = self.plans.get(model_name)
        if plan is None:
            raise KeyError(f"no pricing plan registered for model {model_name!r}")
        self._grant_counter += 1
        grant_id = f"grant-{self._grant_counter:06d}"
        grant = QuotaGrant.sign(grant_id, device_id, model_name, n_queries, self.signing_key())
        self.issued_grants[grant_id] = grant
        self.revenue += plan.package_price(n_queries)
        return grant

    # -- reconciliation ------------------------------------------------------
    def reconcile(self, ledger_export: Dict[str, object]) -> ReconciliationResult:
        """Verify an uploaded ledger export and account the usage.

        Checks performed:

        1. the MAC chain verifies under the device's provisioned key;
        2. every referenced grant was actually issued to this device;
        3. per-grant usage does not exceed the granted quota;
        4. neither the entry count nor any model's cumulative query count is
           lower than at the previous sync (rollback).

        New usage is billed on per-model query-count deltas relative to the
        previous accepted sync, so batch-entry counts cannot be rewritten to
        dodge metering.
        """
        device_id = str(ledger_export["device_id"])
        issues: List[str] = []
        entries_raw: List[Dict[str, object]] = list(ledger_export.get("entries", []))  # type: ignore[arg-type]
        key = self.device_keys.get(device_id)
        if key is None:
            issues.append("device not enrolled")
            result = ReconciliationResult(device_id, False, len(entries_raw), 0, issues)
            self.reconciliations.append(result)
            return result

        # 1. Recompute the MAC chain.  Entries may be classic single-query
        # records (no "count" key) or aggregated batch records; the canonical
        # payload covers the count, so a forged count breaks the chain.
        prev_mac = UsageLedger.GENESIS
        chain_ok = True
        for i, raw in enumerate(entries_raw):
            count = int(raw.get("count", 1))
            payload = entry_payload(
                int(raw["index"]),
                str(raw["grant_id"]),
                str(raw["model_name"]),
                raw["timestamp"],  # type: ignore[arg-type]
                prev_mac,
                count,
            )
            expected = hmac.new(key, payload, hashlib.sha256).hexdigest()
            if raw["index"] != i or raw["prev_mac"] != prev_mac or count < 1 or not hmac.compare_digest(expected, str(raw["mac"])):
                chain_ok = False
                issues.append(f"MAC chain broken at entry {i}")
                break
            prev_mac = str(raw["mac"])
        if not chain_ok:
            result = ReconciliationResult(device_id, False, len(entries_raw), 0, issues)
            self.reconciliations.append(result)
            return result

        # 2 & 3. Grant validity and per-grant limits (batch entries count
        # for their full aggregated query count).
        per_grant: Dict[str, int] = {}
        for raw in entries_raw:
            per_grant[str(raw["grant_id"])] = per_grant.get(str(raw["grant_id"]), 0) + int(raw.get("count", 1))
        for grant_id, used in per_grant.items():
            grant = self.issued_grants.get(grant_id)
            if grant is None or grant.device_id != device_id:
                issues.append(f"unknown or foreign grant {grant_id}")
            elif used > grant.n_queries:
                issues.append(f"grant {grant_id} over-used: {used} > {grant.n_queries}")

        # 4. Rollback detection.  The ledger is append-only, so both the
        # entry count and every model's cumulative query count must be
        # monotone across syncs.  A key-holding device *can* re-MAC its own
        # history, so shrinking (or silently growing) an already-synced
        # entry's count is only caught by comparing totals against the
        # previous sync — which is also what billing is computed from.
        previous = self.synced_counts.get(device_id, 0)
        if len(entries_raw) < previous:
            issues.append(f"ledger rollback: {len(entries_raw)} entries < previously synced {previous}")
        per_model: Dict[str, int] = {}
        for raw in entries_raw:
            per_model[str(raw["model_name"])] = per_model.get(str(raw["model_name"]), 0) + int(raw.get("count", 1))
        previous_queries = self.synced_queries.get(device_id, {})
        for model_name, prev_total in previous_queries.items():
            if per_model.get(model_name, 0) < prev_total:
                issues.append(
                    f"ledger rollback: model {model_name!r} total {per_model.get(model_name, 0)}"
                    f" queries < previously synced {prev_total}"
                )

        accepted = not issues
        n_new = max(0, len(entries_raw) - previous)
        billed = 0.0
        n_new_queries = 0
        if accepted:
            self.synced_counts[device_id] = len(entries_raw)
            for model_name, total in per_model.items():
                delta = total - previous_queries.get(model_name, 0)
                n_new_queries += delta
                plan = self.plans.get(model_name)
                if plan is not None:
                    billed += plan.price_per_query * delta
            self.synced_queries[device_id] = per_model
        result = ReconciliationResult(
            device_id,
            accepted,
            len(entries_raw),
            n_new,
            issues,
            billed_amount=round(billed, 6),
            n_new_queries=n_new_queries,
        )
        self.reconciliations.append(result)
        return result

    # -- reports ---------------------------------------------------------------
    def usage_report(self) -> Dict[str, object]:
        """Aggregate statistics over all reconciliations."""
        accepted = [r for r in self.reconciliations if r.accepted]
        rejected = [r for r in self.reconciliations if not r.accepted]
        return {
            "n_reconciliations": len(self.reconciliations),
            "n_accepted": len(accepted),
            "n_rejected": len(rejected),
            "total_synced_queries": sum(sum(m.values()) for m in self.synced_queries.values()),
            "prepaid_revenue": round(self.revenue, 6),
            "metered_value": round(sum(r.billed_amount for r in accepted), 6),
            "tamper_devices": sorted({r.device_id for r in rejected}),
        }
