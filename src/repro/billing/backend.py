"""Backend side of the pay-per-query system: grants, reconciliation, revenue.

The :class:`BillingBackend` is the cloud counterpart of the on-device
:class:`~repro.billing.metering.UsageLedger`: it provisions per-device keys,
sells prepaid packages (issuing signed grants), and at sync time verifies the
uploaded ledger — detecting tampering (broken MAC chain), over-use (more
entries than granted), rollback/replay (fewer entries than previously seen)
— and accumulates revenue and usage reports.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .metering import LedgerEntry, PricingPlan, QuotaGrant, UsageLedger

__all__ = ["ReconciliationResult", "BillingBackend"]


@dataclass
class ReconciliationResult:
    """Outcome of verifying one device's uploaded usage ledger."""

    device_id: str
    accepted: bool
    n_entries: int
    n_new_entries: int
    issues: List[str] = field(default_factory=list)
    billed_amount: float = 0.0


class BillingBackend:
    """Issues quota grants and reconciles device usage ledgers."""

    def __init__(self, master_key: bytes = b"tinymlops-billing-master") -> None:
        self._master_key = bytes(master_key)
        self.plans: Dict[str, PricingPlan] = {}
        self.device_keys: Dict[str, bytes] = {}
        self.issued_grants: Dict[str, QuotaGrant] = {}
        self.synced_counts: Dict[str, int] = {}
        self.revenue: float = 0.0
        self.reconciliations: List[ReconciliationResult] = []
        self._grant_counter = 0

    # -- provisioning ------------------------------------------------------
    def register_plan(self, plan: PricingPlan) -> None:
        """Register the pricing plan of a model."""
        self.plans[plan.model_name] = plan

    def enroll_device(self, device_id: str) -> bytes:
        """Provision (derive) the per-device metering key."""
        key = hmac.new(self._master_key, f"device:{device_id}".encode(), hashlib.sha256).digest()
        self.device_keys[device_id] = key
        return key

    def signing_key(self) -> bytes:
        """Key used to sign quota grants (shared with devices for verification)."""
        return hmac.new(self._master_key, b"grant-signing", hashlib.sha256).digest()

    # -- sales --------------------------------------------------------------
    def sell_package(self, device_id: str, model_name: str, n_queries: int) -> QuotaGrant:
        """Sell a prepaid package: records revenue and returns the signed grant."""
        if device_id not in self.device_keys:
            raise KeyError(f"device {device_id!r} is not enrolled")
        plan = self.plans.get(model_name)
        if plan is None:
            raise KeyError(f"no pricing plan registered for model {model_name!r}")
        self._grant_counter += 1
        grant_id = f"grant-{self._grant_counter:06d}"
        grant = QuotaGrant.sign(grant_id, device_id, model_name, n_queries, self.signing_key())
        self.issued_grants[grant_id] = grant
        self.revenue += plan.package_price(n_queries)
        return grant

    # -- reconciliation ------------------------------------------------------
    def reconcile(self, ledger_export: Dict[str, object]) -> ReconciliationResult:
        """Verify an uploaded ledger export and account the usage.

        Checks performed:

        1. the MAC chain verifies under the device's provisioned key;
        2. every referenced grant was actually issued to this device;
        3. per-grant usage does not exceed the granted quota;
        4. the entry count is not lower than at the previous sync (rollback).
        """
        device_id = str(ledger_export["device_id"])
        issues: List[str] = []
        entries_raw: List[Dict[str, object]] = list(ledger_export.get("entries", []))  # type: ignore[arg-type]
        key = self.device_keys.get(device_id)
        if key is None:
            issues.append("device not enrolled")
            result = ReconciliationResult(device_id, False, len(entries_raw), 0, issues)
            self.reconciliations.append(result)
            return result

        # 1. Recompute the MAC chain.
        prev_mac = UsageLedger.GENESIS
        chain_ok = True
        for i, raw in enumerate(entries_raw):
            payload = json.dumps(
                {
                    "index": raw["index"],
                    "grant_id": raw["grant_id"],
                    "model_name": raw["model_name"],
                    "timestamp": raw["timestamp"],
                    "prev_mac": prev_mac,
                },
                sort_keys=True,
            ).encode()
            expected = hmac.new(key, payload, hashlib.sha256).hexdigest()
            if raw["index"] != i or raw["prev_mac"] != prev_mac or not hmac.compare_digest(expected, str(raw["mac"])):
                chain_ok = False
                issues.append(f"MAC chain broken at entry {i}")
                break
            prev_mac = str(raw["mac"])
        if not chain_ok:
            result = ReconciliationResult(device_id, False, len(entries_raw), 0, issues)
            self.reconciliations.append(result)
            return result

        # 2 & 3. Grant validity and per-grant limits.
        per_grant: Dict[str, int] = {}
        for raw in entries_raw:
            per_grant[str(raw["grant_id"])] = per_grant.get(str(raw["grant_id"]), 0) + 1
        for grant_id, used in per_grant.items():
            grant = self.issued_grants.get(grant_id)
            if grant is None or grant.device_id != device_id:
                issues.append(f"unknown or foreign grant {grant_id}")
            elif used > grant.n_queries:
                issues.append(f"grant {grant_id} over-used: {used} > {grant.n_queries}")

        # 4. Rollback detection.
        previous = self.synced_counts.get(device_id, 0)
        if len(entries_raw) < previous:
            issues.append(f"ledger rollback: {len(entries_raw)} entries < previously synced {previous}")

        accepted = not issues
        n_new = max(0, len(entries_raw) - previous)
        billed = 0.0
        if accepted:
            self.synced_counts[device_id] = len(entries_raw)
            for raw in entries_raw[previous:]:
                plan = self.plans.get(str(raw["model_name"]))
                if plan is not None:
                    billed += plan.price_per_query
        result = ReconciliationResult(device_id, accepted, len(entries_raw), n_new, issues, billed_amount=round(billed, 6))
        self.reconciliations.append(result)
        return result

    # -- reports ---------------------------------------------------------------
    def usage_report(self) -> Dict[str, object]:
        """Aggregate statistics over all reconciliations."""
        accepted = [r for r in self.reconciliations if r.accepted]
        rejected = [r for r in self.reconciliations if not r.accepted]
        return {
            "n_reconciliations": len(self.reconciliations),
            "n_accepted": len(accepted),
            "n_rejected": len(rejected),
            "total_synced_queries": sum(self.synced_counts.values()),
            "prepaid_revenue": round(self.revenue, 6),
            "metered_value": round(sum(r.billed_amount for r in accepted), 6),
            "tamper_devices": sorted({r.device_id for r in rejected}),
        }
