"""Offline pay-per-query metering with tamper-evident usage logs.

Paper Section III-C: a pay-per-query business model "is much more difficult
to implement as the model is now replicated on a large number of end-user's
devices that might not even be connected to the internet the moment they are
evaluating the model.  We could offer prepaid packages where the user
purchases the right to perform a certain number of model calls.  … Doing
this in a secure offline way on untrusted hardware is however not trivial."

We implement the practical software-only approximation:

* the backend issues signed :class:`QuotaGrant` tokens (prepaid packages);
* the on-device :class:`UsageLedger` appends one HMAC-chained entry per
  query, so any retroactive edit or deletion breaks the chain;
* fleet-scale serving uses :meth:`UsageLedger.record_batch`, which consumes
  quota for ``n`` queries in O(#grants) by appending *aggregated* chain
  entries carrying an explicit ``count`` — the count is covered by the MAC,
  so batching loses none of the tamper evidence;
* quota enforcement denies queries beyond the granted amount while offline;
* on reconnection the ledger is uploaded and verified by the backend
  (:class:`BillingBackend`), which detects tampering, double-spends and
  replay, and produces revenue reports.

A genuinely tamper-*proof* meter requires secure hardware (the paper cites
an offline-payment system [30]); DESIGN.md documents this substitution.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["QuotaGrant", "LedgerEntry", "UsageLedger", "QuotaExceededError", "PricingPlan", "entry_payload"]


class QuotaExceededError(RuntimeError):
    """Raised when a device attempts a query beyond its prepaid quota."""


@dataclass(frozen=True)
class PricingPlan:
    """Per-model pricing: price per query and prepaid package sizes."""

    model_name: str
    price_per_query: float = 0.0015  # mirrors the $1.50 / 1000 queries example
    package_sizes: Tuple[int, ...] = (1000, 10000, 100000)

    def package_price(self, n_queries: int) -> float:
        """Price of a prepaid package of ``n_queries``."""
        return round(self.price_per_query * n_queries, 6)


@dataclass(frozen=True)
class QuotaGrant:
    """A signed prepaid package issued by the backend to one device."""

    grant_id: str
    device_id: str
    model_name: str
    n_queries: int
    signature: str

    def payload(self) -> bytes:
        return json.dumps(
            {
                "grant_id": self.grant_id,
                "device_id": self.device_id,
                "model_name": self.model_name,
                "n_queries": self.n_queries,
            },
            sort_keys=True,
        ).encode()

    @staticmethod
    def sign(grant_id: str, device_id: str, model_name: str, n_queries: int, key: bytes) -> "QuotaGrant":
        """Create a grant signed with the backend's key."""
        unsigned = QuotaGrant(grant_id, device_id, model_name, n_queries, signature="")
        sig = hmac.new(key, unsigned.payload(), hashlib.sha256).hexdigest()
        return QuotaGrant(grant_id, device_id, model_name, n_queries, signature=sig)

    def verify(self, key: bytes) -> bool:
        """Verify the backend signature."""
        expected = hmac.new(key, self.payload(), hashlib.sha256).hexdigest()
        return hmac.compare_digest(expected, self.signature)


def entry_payload(
    index: int,
    grant_id: str,
    model_name: str,
    timestamp: float,
    prev_mac: str,
    count: int = 1,
) -> bytes:
    """Canonical MAC payload of a ledger entry.

    ``count`` is only serialized when it differs from 1, which keeps the
    payload (and therefore every MAC) of classic single-query entries
    byte-identical to the pre-batching format.  Aggregated batch entries
    include their count, so a tampered count always breaks the chain.
    """
    body: Dict[str, object] = {
        "index": index,
        "grant_id": grant_id,
        "model_name": model_name,
        "timestamp": timestamp,
        "prev_mac": prev_mac,
    }
    if count != 1:
        body["count"] = count
    return json.dumps(body, sort_keys=True).encode()


@dataclass(frozen=True)
class LedgerEntry:
    """One metered query — or an aggregated batch of ``count`` queries —
    in the hash chain."""

    index: int
    grant_id: str
    model_name: str
    timestamp: float
    prev_mac: str
    mac: str
    count: int = 1

    def payload(self, prev_mac: str) -> bytes:
        return entry_payload(
            self.index, self.grant_id, self.model_name, self.timestamp, prev_mac, self.count
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form for durable segment persistence.

        The round-trip is exact (``timestamp`` survives float64 JSON
        encoding bit-for-bit), so a rehydrated entry MAC-verifies against
        the same device key — :meth:`UsageLedger.append_segment` re-checks
        every MAC on restore, making tampered persisted segments
        unappendable."""
        return {
            "index": self.index,
            "grant_id": self.grant_id,
            "model_name": self.model_name,
            "timestamp": self.timestamp,
            "prev_mac": self.prev_mac,
            "mac": self.mac,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LedgerEntry":
        return cls(
            index=int(payload["index"]),
            grant_id=str(payload["grant_id"]),
            model_name=str(payload["model_name"]),
            timestamp=float(payload["timestamp"]),
            prev_mac=str(payload["prev_mac"]),
            mac=str(payload["mac"]),
            count=int(payload.get("count", 1)),
        )


class UsageLedger:
    """On-device, append-only, HMAC-chained usage log with quota enforcement.

    The device key is provisioned by the backend at enrollment time.  Every
    :meth:`record_query` appends an entry whose MAC covers the previous
    entry's MAC, forming a chain: deleting or editing any entry invalidates
    all subsequent MACs, which the backend detects at reconciliation.
    """

    GENESIS = "0" * 64

    def __init__(self, device_id: str, device_key: bytes) -> None:
        self.device_id = device_id
        self._key = bytes(device_key)
        self.entries: List[LedgerEntry] = []
        self.grants: Dict[str, QuotaGrant] = {}
        self._used_per_grant: Dict[str, int] = {}
        self._clock = 0.0

    # -- grants ------------------------------------------------------------
    def add_grant(self, grant: QuotaGrant, backend_key: Optional[bytes] = None) -> None:
        """Install a prepaid package.  Optionally verify the backend signature."""
        if grant.device_id != self.device_id:
            raise ValueError("grant issued to a different device")
        if backend_key is not None and not grant.verify(backend_key):
            raise ValueError("invalid grant signature")
        if grant.grant_id in self.grants:
            raise ValueError(f"grant {grant.grant_id} already installed")
        self.grants[grant.grant_id] = grant
        self._used_per_grant[grant.grant_id] = 0

    def remaining(self, model_name: Optional[str] = None) -> int:
        """Remaining prepaid queries (optionally for one model)."""
        total = 0
        for grant in self.grants.values():
            if model_name is not None and grant.model_name != model_name:
                continue
            total += max(0, grant.n_queries - self._used_per_grant[grant.grant_id])
        return total

    # -- metering ---------------------------------------------------------
    def _next_mac(
        self,
        entry_index: int,
        grant_id: str,
        model_name: str,
        timestamp: float,
        prev_mac: str,
        count: int = 1,
    ) -> str:
        payload = entry_payload(entry_index, grant_id, model_name, timestamp, prev_mac, count)
        return hmac.new(self._key, payload, hashlib.sha256).hexdigest()

    def _append_entry(self, grant_id: str, model_name: str, timestamp: Optional[float], count: int) -> LedgerEntry:
        self._clock += float(count)
        ts = timestamp if timestamp is not None else self._clock
        prev_mac = self.entries[-1].mac if self.entries else self.GENESIS
        index = len(self.entries)
        mac = self._next_mac(index, grant_id, model_name, ts, prev_mac, count)
        entry = LedgerEntry(
            index=index,
            grant_id=grant_id,
            model_name=model_name,
            timestamp=ts,
            prev_mac=prev_mac,
            mac=mac,
            count=count,
        )
        self.entries.append(entry)
        self._used_per_grant[grant_id] += count
        return entry

    def record_query(self, model_name: str, timestamp: Optional[float] = None) -> LedgerEntry:
        """Meter one query, consuming quota from the oldest matching grant.

        Raises :class:`QuotaExceededError` when no quota remains — the
        application denies the inference in that case (paper Sec. III-C).
        """
        grant_id = None
        for gid, grant in self.grants.items():
            if grant.model_name == model_name and self._used_per_grant[gid] < grant.n_queries:
                grant_id = gid
                break
        if grant_id is None:
            raise QuotaExceededError(f"no remaining quota for model {model_name!r} on {self.device_id}")
        return self._append_entry(grant_id, model_name, timestamp, count=1)

    def record_batch(self, model_name: str, n: int, timestamp: Optional[float] = None, partial: bool = True) -> int:
        """Meter up to ``n`` queries at once; returns the number granted.

        Quota is consumed across grants oldest-first, exactly like ``n``
        successive :meth:`record_query` calls, but the ledger grows by one
        aggregated, MAC-chained entry *per consumed grant* instead of one
        entry per query — O(#grants) work and ledger size instead of O(n).

        With ``partial=True`` (the serving-path semantics) the batch is
        truncated to the remaining quota and the granted count is returned,
        mirroring a per-query loop that denies each query past exhaustion.
        With ``partial=False`` the call raises :class:`QuotaExceededError`
        without consuming anything unless the full batch fits.
        """
        if n < 0:
            raise ValueError("batch size must be non-negative")
        if n == 0:
            return 0
        if not partial and self.remaining(model_name) < n:
            raise QuotaExceededError(
                f"quota for model {model_name!r} on {self.device_id} cannot cover a batch of {n}"
            )
        granted = 0
        for gid, grant in self.grants.items():
            if granted >= n:
                break
            if grant.model_name != model_name:
                continue
            available = grant.n_queries - self._used_per_grant[gid]
            if available <= 0:
                continue
            take = min(available, n - granted)
            self._append_entry(gid, model_name, timestamp, count=take)
            granted += take
        return granted

    def used(self, model_name: Optional[str] = None) -> int:
        """Number of metered queries (optionally per model)."""
        return sum(e.count for e in self.entries if model_name is None or e.model_name == model_name)

    # -- shard segments ----------------------------------------------------
    def head_mac(self) -> str:
        """The chain head: the last entry's MAC, or GENESIS when empty."""
        return self.entries[-1].mac if self.entries else self.GENESIS

    def export_segment(self, start: int) -> List[LedgerEntry]:
        """The chain suffix appended since ``start`` entries existed.

        A sharded worker meters against a pickled copy of this ledger and
        ships back ``export_segment(base)`` where ``base`` was the copy's
        entry count at dispatch; the parent re-chains it with
        :meth:`append_segment`.
        """
        if not 0 <= start <= len(self.entries):
            raise ValueError(f"segment start {start} outside chain of length {len(self.entries)}")
        return list(self.entries[start:])

    def append_segment(self, entries: Sequence[LedgerEntry]) -> int:
        """Re-chain a segment produced by a forked copy of this ledger.

        The segment must extend this ledger's chain exactly: each entry's
        index must continue the chain, its ``prev_mac`` must equal the
        current head, its MAC must verify under this device's key and its
        grant must be installed.  On success the entries are appended and
        the per-grant quota counters and metering clock advance exactly as
        if :meth:`record_batch` had produced them here — so a merged ledger
        is byte-identical to one that metered the same windows in-process.
        Raises :class:`ValueError` (appending nothing) on any mismatch; a
        torn merge can therefore never happen mid-segment, because the
        whole segment is validated before the first append.
        """
        entries = list(entries)
        prev_mac = self.head_mac()
        index = len(self.entries)
        for entry in entries:
            if entry.index != index or entry.prev_mac != prev_mac:
                raise ValueError(
                    f"segment entry {entry.index} does not extend the chain of {self.device_id!r}"
                )
            expected = hmac.new(self._key, entry.payload(prev_mac), hashlib.sha256).hexdigest()
            if not hmac.compare_digest(expected, entry.mac):
                raise ValueError(f"segment entry {entry.index} has an invalid MAC for {self.device_id!r}")
            if entry.grant_id not in self.grants:
                raise ValueError(f"segment entry {entry.index} consumes unknown grant {entry.grant_id!r}")
            prev_mac = entry.mac
            index += 1
        for entry in entries:
            self.entries.append(entry)
            self._used_per_grant[entry.grant_id] += entry.count
            self._clock += float(entry.count)
        return len(entries)

    # -- verification -----------------------------------------------------
    def verify_chain(self, key: Optional[bytes] = None) -> bool:
        """Recompute every MAC; False if any entry was altered or removed."""
        key = key if key is not None else self._key
        prev_mac = self.GENESIS
        for i, entry in enumerate(self.entries):
            if entry.index != i or entry.prev_mac != prev_mac:
                return False
            expected = hmac.new(key, entry.payload(prev_mac), hashlib.sha256).hexdigest()
            if not hmac.compare_digest(expected, entry.mac):
                return False
            prev_mac = entry.mac
        return True

    def export(self) -> Dict[str, object]:
        """Serializable sync payload (entries + installed grants)."""
        return {
            "device_id": self.device_id,
            "entries": [e.__dict__ for e in self.entries],
            "grants": {gid: g.__dict__ for gid, g in self.grants.items()},
        }
