"""Quickstart: train a model, release it, deploy it to a simulated edge fleet.

This walks the full TinyMLOps loop of the paper's Figure 1 in ~60 lines:
train -> register + optimize variants -> per-device selection & compilation ->
metered serving with drift monitoring -> telemetry/billing sync -> summary.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PlatformConfig, TinyMLOpsPlatform
from repro.data import make_gaussian_blobs
from repro.devices import Fleet
from repro.nn import make_mlp


def main() -> None:
    # 1. A sensor-classification task and a heterogeneous 30-device fleet.
    dataset = make_gaussian_blobs(n_samples=1500, n_features=12, n_classes=4, seed=0)
    train, test = dataset.split(test_fraction=0.3, seed=0)
    fleet = Fleet.random(30, seed=0)
    platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8, 4), sparsities=(0.5,), seed=0))

    # 2. Train the base model centrally (the data scientist's job).
    model = make_mlp(12, 4, hidden=(48, 24), seed=0, name="sensor-classifier")
    model.fit(train.x, train.y, epochs=8, lr=0.01, seed=0)
    print(f"base model accuracy: {model.evaluate(test.x, test.y)['accuracy']:.3f}")

    # 3. Release: register it, stamp out quantized/pruned variants, evaluate them.
    release = platform.release(model, test.x, test.y, watermark_owner="quickstart-co")
    print("\nvariants:")
    for record in release["variants"]:
        print(f"  {record['name']:<28} acc={record['accuracy']:<6} size={record['size_kb']}KB")
    print("pareto front:", release["pareto_front"])

    # 4. Deploy: per-device context-aware selection + target-aware compilation.
    deploy = platform.deploy(
        "sensor-classifier",
        reference_x=train.x[:300],
        reference_predictions=model.predict_classes(train.x[:300]),
        num_classes=4,
        prepaid_queries=500,
    )
    print(f"\ndeployed to {deploy['deployed']}/{len(fleet)} devices; variant mix: {deploy['per_variant']}")

    # 5. Serve production traffic: one fleet-wide window — predictions run in
    # a single compiled-plan sweep and drift checks in one FleetMonitor
    # sweep — then sync the online devices.
    rng = np.random.default_rng(1)
    window = {
        device.device_id: test.x[rng.integers(0, len(test.x), size=40)] for device in fleet
    }
    report = platform.serve_fleet("sensor-classifier", window)
    print(f"served {report.served}/{report.requested} fleet queries in one sweep")
    synced = sum(1 for device in fleet if platform.sync_device(device.device_id).get("synced"))
    print(f"synced telemetry + usage ledgers from {synced} online devices")

    # 6. Fleet health and platform summary.
    health = platform.fleet_health()
    print("\nfleet health:", {k: round(v, 4) if isinstance(v, float) else v for k, v in health["metrics"].items()})
    print("alerts:", health["alerts"] or "none")
    print("\nplatform summary:")
    for key, value in platform.summary().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
