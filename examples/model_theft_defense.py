"""Protecting a deployed model's IP (paper Section V) and verifying execution (VI).

The script plays both sides:

* the *owner* watermarks the model, encrypts it at rest and serves it behind
  prediction poisoning + an extraction detector;
* the *attacker* tries direct theft (reading the artifact) and indirect
  theft (query-based distillation of a surrogate);
* finally a payment-authorizing backend verifies an execution transcript so
  a tampered on-device model cannot fake its predictions.

Run with:  python examples/model_theft_defense.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_gaussian_blobs
from repro.nn import make_mlp
from repro.protection import (
    ExtractionDetector,
    ModelKeyManager,
    ProtectedModel,
    QueryBasedExtractor,
    StaticWatermarker,
    direct_theft,
    evaluate_robustness,
)
from repro.verification import TranscriptVerifier, VerifiableExecutor


def main() -> None:
    dataset = make_gaussian_blobs(2000, 16, 5, cluster_std=1.4, seed=0)
    train, test = dataset.split(0.3, seed=0)
    victim = make_mlp(16, 5, hidden=(64, 32), seed=0, name="victim")
    victim.fit(train.x, train.y, epochs=8, lr=0.01, seed=0)
    print(f"victim accuracy: {victim.evaluate(test.x, test.y)['accuracy']:.3f}")

    # --- watermarking --------------------------------------------------------
    watermarker = StaticWatermarker(message_bits=48, seed=1)
    marked, key = watermarker.embed(victim, owner="edge-ai-co")
    print("\nwatermark robustness (bit error rate after removal attacks):")
    for row in evaluate_robustness(watermarker, marked, key, x_finetune=train.x[:300], y_finetune=train.y[:300]):
        print(f"  {row['attack']:<10} param={row['param']:<5} BER={row['bit_error_rate']:.3f} "
              f"matched={bool(row['matched'])} acc={row.get('accuracy_after_attack', float('nan')):.3f}")

    # --- encryption at rest blocks direct theft ------------------------------
    keys = ModelKeyManager()
    blob = keys.wrap_model(marked.to_bytes(), "victim", "dev-001")
    print(f"\nencrypted artifact: {blob.size_bytes} bytes")
    print("direct theft of the encrypted artifact:", direct_theft(marked, encrypted=True))
    print("direct theft of a cleartext artifact succeeds:", direct_theft(marked, encrypted=False) is not None)

    # --- indirect (query-based) extraction, with and without defences --------
    def attack(poisoning: str, budget: int) -> dict:
        detector = ExtractionDetector(train.x, threshold=0.3, seed=0)
        protected = ProtectedModel(marked, poisoning=poisoning, detector=detector)
        extractor = QueryBasedExtractor(lambda: make_mlp(16, 5, hidden=(64, 32), seed=7),
                                        query_budget=budget, epochs=6, seed=2)
        result = extractor.run(lambda x: protected.predict_logits(x, client_id="attacker"),
                               (16,), test.x, test.y, reference_x=None)
        return {
            "poisoning": poisoning,
            "agreement": result.agreement_with_victim,
            "surrogate_acc": result.surrogate_accuracy,
            "legit_acc": protected.accuracy(test.x, test.y),
            "attacker_flagged": detector.check("attacker"),
        }

    print("\nindirect extraction with 400 synthetic queries:")
    for poisoning in ("none", "round", "top1", "reverse_sigmoid"):
        row = attack(poisoning, budget=400)
        print(f"  poison={row['poisoning']:<16} clone-agreement={row['agreement']:.3f} "
              f"clone-acc={row['surrogate_acc']:.3f} legit-acc={row['legit_acc']:.3f} "
              f"detector-flagged={row['attacker_flagged']}")

    # --- verifiable execution -------------------------------------------------
    print("\nverifiable execution for a payment-authorizing prediction:")
    executor = VerifiableExecutor(marked, seed=0)
    transcript = executor.execute(test.x[:64])
    verifier = TranscriptVerifier(marked, expected_root=executor.weight_root, seed=0)
    report = verifier.verify(transcript)
    print(f"  honest device:   valid={report['valid']} transcript={report['transcript_bytes']} bytes "
          f"soundness_error={report['soundness_error']:.2e}")
    transcript.layer_outputs[-1][:, 0] += 10.0  # device tries to force class 0
    print(f"  tampered device: valid={verifier.verify(transcript)['valid']}")


if __name__ == "__main__":
    main()
