"""Keyword spotting on a fragmented fleet: compilation, fallbacks, offloading.

Scenario (paper Sections III-A and IV): a wake-word style audio classifier
must run on everything from Cortex-M0 MCUs to flagship phones.  The script

1. trains a depthwise-separable CNN on synthetic keyword spectrograms,
2. shows which device profiles can / cannot run it as-is (fragmentation),
3. compiles per-target artifacts with quantization and BatchNorm folding,
4. serves heterogeneous variants (fp32 / int8) across the whole fleet in
   one batched sweep through the compiled inference engine,
5. builds a cascade pipeline (tiny MLP first, CNN only for unsure samples),
6. finds the best edge-cloud split point for the weakest devices.

Run with:  python examples/keyword_spotting_fleet.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import make_keyword_spectrograms
from repro.devices import NetworkCondition, NetworkType, get_profile, list_profiles
from repro.exchange import (
    CompatibilityChecker,
    Compiler,
    FleetExecutor,
    GraphExecutor,
    PassPipeline,
    annotate_quantization,
    expand_fused_activations,
    from_sequential,
)
from repro.nn import make_depthwise_cnn, make_mlp
from repro.runtime import (
    ConditionalStage,
    Pipeline,
    argmax_module,
    find_best_split,
    model_module,
    softmax_module,
)


def main() -> None:
    dataset = make_keyword_spectrograms(n_samples=1200, n_mels=16, n_frames=16, num_keywords=4, seed=0)
    train, test = dataset.split(test_fraction=0.3, seed=0)

    print("training keyword-spotting CNN ...")
    cnn = make_depthwise_cnn((16, 16, 1), 4, width_multiplier=1.0, blocks=2, seed=0, name="kws-cnn")
    cnn.fit(train.x, train.y, epochs=4, lr=0.005, batch_size=32, seed=0)
    print(f"CNN accuracy: {cnn.evaluate(test.x, test.y)['accuracy']:.3f}  params: {cnn.num_params()}")

    # --- fragmentation: who can run this model at all? ---------------------
    graph = from_sequential(cnn)
    checker = CompatibilityChecker()
    print("\ncompatibility before lowering:")
    for name in list_profiles():
        report = checker.check(graph, get_profile(name))
        status = "ok" if report.compatible else f"FAILS ({', '.join(report.issue_kinds())})"
        print(f"  {name:<16} {status}")

    # --- per-target compilation --------------------------------------------
    compiler = Compiler()
    print("\nper-target compiled artifacts:")
    artifacts, failures = compiler.compile_for_fleet(graph, [get_profile(n) for n in list_profiles()])
    for target, artifact in artifacts.items():
        d = artifact.describe()
        print(f"  {target:<16} bits={d['bits']:<3} size={d['size_kb']:.1f}KB  latency={d['latency_ms']:.3f}ms")
    for target, report in failures.items():
        print(f"  {target:<16} cannot be targeted: {report.issue_kinds()}")

    # --- compiled batched fleet serving --------------------------------------
    # Phones run the fp32 plan, everything MCU-class runs the int8 plan;
    # one FleetExecutor sweep serves every device's window at once.
    lowered = PassPipeline.standard_inference().run(graph)
    plans = FleetExecutor.from_graphs(
        {"kws-fp32": lowered, "kws-int8": annotate_quantization(lowered, bits=8)}
    )
    rng = np.random.default_rng(0)
    device_ids = [f"dev-{i}" for i in range(60)]
    assignments = {d: ("kws-fp32" if i % 3 == 0 else "kws-int8") for i, d in enumerate(device_ids)}
    windows = {d: test.x[rng.integers(0, len(test.x), size=2)] for d in device_ids}

    reference = {
        name: GraphExecutor(expand_fused_activations(plans.plans[name].graph)) for name in plans.plans
    }
    t0 = time.perf_counter()
    ref_outputs = {d: reference[assignments[d]].run(windows[d]) for d in device_ids}
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    fleet_outputs = plans.run_fleet(assignments, windows)
    t_fleet = time.perf_counter() - t0
    agree = all(np.allclose(fleet_outputs[d], ref_outputs[d], atol=1e-8) for d in device_ids)
    print(
        f"\ncompiled fleet sweep over {len(device_ids)} devices: "
        f"{t_fleet * 1e3:.1f}ms vs per-device reference {t_ref * 1e3:.1f}ms "
        f"({t_ref / max(t_fleet, 1e-12):.1f}x, outputs identical: {agree})"
    )

    # --- cascade pipeline for weak devices -----------------------------------
    tiny = make_mlp(16 * 16, 4, hidden=(32,), seed=1, name="kws-tiny")
    flat_train = train.x.reshape(len(train), -1)
    flat_test = test.x.reshape(len(test), -1)
    tiny.fit(flat_train, train.y, epochs=6, lr=0.01, seed=1)

    def confident(logits: np.ndarray) -> np.ndarray:
        from repro.nn.activations import softmax

        return softmax(logits, axis=-1).max(axis=-1) > 0.8

    class FlattenFirst:
        """Route the raw spectrogram either through the tiny MLP or the CNN."""

    cascade = Pipeline(
        [
            ConditionalStage(
                "escalate-unsure",
                predicate=lambda x: confident(tiny.forward(x.reshape(x.shape[0], -1))),
                if_true=Pipeline([model_module(tiny, name="tiny-flat"),], name="cheap") ,
                if_false=Pipeline([model_module(cnn)], name="accurate"),
            ),
            softmax_module(),
            argmax_module(),
        ],
        name="kws-cascade",
    )
    # The tiny branch consumes flattened input; wrap its module accordingly.
    cascade.stages[0].if_true.stages[0].fn = lambda x: tiny.forward(np.asarray(x).reshape(x.shape[0], -1))
    preds = cascade.run(test.x)
    print(f"\ncascade accuracy: {np.mean(preds == test.y):.3f} (tiny-only: "
          f"{tiny.evaluate(flat_test, test.y)['accuracy']:.3f}, CNN-only: {cnn.evaluate(test.x, test.y)['accuracy']:.3f})")

    # --- edge-cloud split for the weakest class of devices -------------------
    print("\nedge-cloud split search (mcu-m4 edge, cloud backend):")
    for net in (NetworkType.WIFI, NetworkType.CELLULAR, NetworkType.LPWAN):
        decision = find_best_split(graph, get_profile("mcu-m4"), get_profile("cloud"), NetworkCondition.of(net))
        print(
            f"  {net:<10} split after node {decision.split_after:>2}  total={decision.total_latency_s * 1e3:.2f}ms  "
            f"(all-edge {decision.all_edge_latency_s * 1e3:.2f}ms, all-cloud {decision.all_cloud_latency_s * 1e3:.2f}ms)"
        )


if __name__ == "__main__":
    main()
