"""Closed-loop model lifecycle: drift -> retrain -> canary -> promote/rollback.

The paper's Section III-A loop end to end: production traffic drifts, the
monitors fire, the lifecycle pipeline retrains a candidate with federated
rounds on a *clone* of the incumbent, canaries it on a cloned fleet slice,
and the gate decides — promote (deployments flip, variants re-derive, stage
``production``) or roll back (candidate staged ``rejected``, incumbent
untouched).  A deliberately oversized candidate shows the rollback path.

Run with:  python examples/lifecycle_loop.py
"""

from __future__ import annotations

import numpy as np

from repro.core import PlatformConfig, TinyMLOpsPlatform
from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.devices import Fleet
from repro.lifecycle import LifecycleConfig, oversized_candidate
from repro.nn import make_mlp


def main() -> None:
    # 1. A released + deployed world: model, variants, monitors, quotas.
    dataset = make_gaussian_blobs(n_samples=1500, n_features=12, n_classes=4, seed=3)
    train, test = dataset.split(test_fraction=0.3, seed=3)
    fleet = Fleet.random(20, seed=3)
    platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=3))
    model = make_mlp(12, 4, hidden=(48, 24), seed=0, name="sensor-classifier")
    model.fit(train.x, train.y, epochs=6, lr=0.01, seed=0)
    platform.release(model, test.x, test.y)
    platform.deploy(
        "sensor-classifier",
        reference_x=train.x[:300],
        reference_predictions=model.predict_classes(train.x[:300]),
        num_classes=4,
        prepaid_queries=2000,
    )
    incumbent = platform.registry.latest("sensor-classifier", kind="base")
    print(f"deployed incumbent {incumbent.version_id} to {len(fleet)} devices")

    # 2. The lifecycle loop, bound to the platform: federated shards for
    # retraining, held-out data for the accuracy gate and canary traffic.
    clients = partition_dirichlet(train, 8, alpha=0.7, seed=3)
    pipeline = platform.lifecycle(
        "sensor-classifier",
        clients,
        (test.x, test.y),
        config=LifecycleConfig(rounds=2, canary_fraction=0.25, canary_windows=2, seed=3),
    )

    # 3. Production traffic drifts (sensors decalibrate: shifted inputs).
    rng = np.random.default_rng(7)
    drifted = test.x + 5.0
    for device in list(fleet)[:6]:
        platform.serve(device.device_id, "sensor-classifier", drifted[rng.integers(0, len(drifted), size=50)])
    print(f"served drifted traffic; monitors with drift: "
          f"{sum(1 for m in platform.monitors.values() if m.any_drift())}")

    # 4. One poll of the loop: the drift events trigger a full cycle.
    decision = pipeline.step()
    assert decision is not None
    print(f"\ntrigger: {decision.trigger['kind']} ({decision.trigger.get('n_events', 0)} events)")
    print(f"candidate {decision.candidate_version}: promoted={decision.promoted}")
    print(f"  canary slice: {decision.canary_devices}")
    print(f"  candidate acc={decision.candidate_metrics['accuracy']:.3f} "
          f"vs incumbent acc={decision.incumbent_metrics['accuracy']:.3f}")
    print(f"  re-derived variants: {decision.derived_versions}; "
          f"stale after: {decision.stale_variants_after}")
    production = platform.registry.production("sensor-classifier")
    print(f"  production stage now: {production.version_id if production else None}")

    # 5. Inject a hopeless candidate: the gate must roll it back.
    bad = pipeline.run_cycle(
        candidate_model=oversized_candidate(platform.deployed_models["sensor-classifier"], seed=1)
    )
    print(f"\noversized candidate {bad.candidate_version}: promoted={bad.promoted}")
    for reason in bad.reasons:
        print(f"  gate: {reason}")
    print(f"  stage: {platform.registry.get(bad.candidate_version).tags['stage']}")
    histogram = platform.registry.deployment_histogram("sensor-classifier")
    print(f"  fleet still runs: {histogram}")

    # 6. The audit trail: every decision is a content-addressed record.
    for d in pipeline.history:
        record = platform.registry.store.get_object(d.record_digest)
        print(f"\ncycle {d.cycle} record {d.record_digest[:12]}: promoted={record['promoted']}, "
              f"reasons={record['reasons'] or 'none'}")


if __name__ == "__main__":
    main()
