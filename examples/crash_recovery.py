"""Durable crash recovery: interrupt a training run, restart, finish identically.

A TinyMLOps coordinator can die mid-round — OOM, node preemption, a pulled
plug.  This example walks the durable crash-recovery plane end to end:

1. run federated rounds under a seeded fault plan against a
   ``DurableCheckpointStore`` (every checkpoint, round commit and fault
   plan committed to disk via atomic rename);
2. "crash" partway through (here: stop the loop and throw the whole world
   away — the same state a freshly restarted process sees);
3. rebuild the world from scratch, restore the latest commit record
   (weights + scheduler RNG stream), resume the interrupted round from
   its checkpoint and finish the run;
4. verify the recovered run's final weights are *bit-identical* to an
   uninterrupted run of the same world — crash recovery that changes the
   model is worse than no recovery at all.

Run with:  python examples/crash_recovery.py [state_dir]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.faults import (
    DurableCheckpointStore,
    FaultInjector,
    FaultPlan,
    FaultRates,
    RoundInterrupted,
)
from repro.federated import FederatedClient, FederatedEngine
from repro.nn import make_mlp

N_ROUNDS = 4
CRASH_AFTER_ROUND = 1  # the "power cut" lands while round 2 is in flight


def build_world(seed: int = 9) -> FederatedEngine:
    """A deterministic federated world; called once per 'process'."""
    dataset = make_gaussian_blobs(n_samples=600, n_features=10, n_classes=3, seed=seed)
    train, test = dataset.split(test_fraction=0.3, seed=seed)
    shards = partition_dirichlet(train, 8, alpha=0.6, seed=seed)
    clients = [
        FederatedClient(shard, local_epochs=1, lr=0.05, seed=seed + i)
        for i, shard in enumerate(shards)
    ]
    model = make_mlp(10, 3, hidden=(16,), seed=seed)
    return FederatedEngine(model, clients, eval_data=(test.x, test.y))


def build_plan(engine: FederatedEngine) -> FaultPlan:
    """A chaos plan with a coordinator interrupt scheduled in round 2."""
    plan = FaultPlan.generate(
        17,
        client_ids=sorted(engine.clients),
        n_rounds=N_ROUNDS,
        rates=FaultRates(device_crash=0.1, uplink_loss=0.15),
    )
    # Pin an explicit coordinator crash after the 1st cohort of round 2.
    import dataclasses

    return dataclasses.replace(plan, interrupts=((CRASH_AFTER_ROUND + 1, 1),))


def main(state_dir: str) -> None:
    # --- reference: the same world, never interrupted --------------------
    ref = build_world()
    ref.fault_injector = FaultInjector(build_plan(ref))
    for r in range(N_ROUNDS):
        ref.run_round(r)
    ref_weights = ref.global_model.get_flat_weights()
    print(f"reference run: {N_ROUNDS} rounds, "
          f"final accuracy {ref.history[-1].global_accuracy:.3f}")

    # --- first process: runs until the coordinator 'dies' ----------------
    fed = build_world()
    store = DurableCheckpointStore(state_dir)
    fed.checkpoints = store
    plan = build_plan(fed)
    store.put_plan(plan)  # the plan travels with the state dir
    fed.fault_injector = FaultInjector(plan)
    crashed_in_round = None
    for r in range(N_ROUNDS):
        try:
            fed.run_round(r)
        except RoundInterrupted as exc:
            crashed_in_round = exc.round_index
            break  # the process is gone; everything in memory is lost
    assert crashed_in_round is not None
    print(f"process 1: committed rounds 0..{crashed_in_round - 1}, "
          f"died inside round {crashed_in_round} "
          f"({store.latest_for(crashed_in_round, fed._weights_digest()).n_cohorts_done} "
          f"cohort(s) checkpointed)")
    del fed  # nothing survives but the state directory

    # --- second process: restore, resume, finish -------------------------
    fed2 = build_world()
    store2 = DurableCheckpointStore(state_dir)  # replays the manifest
    fed2.checkpoints = store2
    fed2.fault_injector = FaultInjector(store2.load_plan())  # digest-verified
    commit = store2.latest_commit()
    start = 0
    if commit is not None:
        fed2.global_model.set_flat_weights(commit["weights"])
        fed2._restore_scheduler_rng(commit["scheduler_state"])
        start = int(commit["round_index"]) + 1
    print(f"process 2: restored commit for round {start - 1}, resuming round {start}")
    for r in range(start, N_ROUNDS):
        fed2.run_round(r)  # round `start` resumes from its checkpoint

    # --- the whole point --------------------------------------------------
    identical = np.array_equal(fed2.global_model.get_flat_weights(), ref_weights)
    print(f"recovered weights bit-identical to uninterrupted run: {identical}")
    print(f"round results recorded on disk: {len(store2.commits())}")
    assert identical, "crash recovery must not change the trained model"


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory() as scratch:
            main(scratch)
