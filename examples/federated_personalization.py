"""Federated predictive maintenance with personalization (paper Section III-D).

Scenario: vibration sensors on many machines detect anomalies.  Raw data
never leaves a machine; the global model is trained with federated
averaging under communication compression, clients are selected only when
charging / on WiFi, and each machine finally personalizes the global model
to its own vibration signature.

Run with:  python examples/federated_personalization.py
"""

from __future__ import annotations

import numpy as np

from repro.data import ClientData, make_sensor_windows
from repro.devices import Fleet
from repro.federated import (
    EligibilityScheduler,
    FederatedClient,
    FederatedServer,
    TopKSparsifier,
    centralized_baseline,
)
from repro.nn import make_mlp


def main() -> None:
    n_machines = 12
    window, channels = 32, 3
    rng = np.random.default_rng(0)

    # Each machine has its own vibration signature -> naturally non-IID data.
    clients = []
    eval_x, eval_y = [], []
    for machine in range(n_machines):
        signature = float(rng.uniform(-1.0, 1.0))
        ds = make_sensor_windows(600, window=window, n_channels=channels, anomaly_fraction=0.15,
                                 machine_signature=signature, seed=machine)
        train, test = ds.split(0.3, seed=machine)
        clients.append(FederatedClient(
            ClientData(client_id=f"dev-{machine:04d}", x=train.x, y=train.y),
            local_epochs=2, lr=0.05, seed=machine,
        ))
        eval_x.append(test.x)
        eval_y.append(test.y)
    eval_x = np.concatenate(eval_x)
    eval_y = np.concatenate(eval_y)

    input_dim = window * channels
    fleet = Fleet.random(n_machines, seed=3)
    device_ids = list(fleet.devices)
    context = {f"dev-{i:04d}": fleet.get(device_ids[i]).context() for i in range(n_machines)}

    # --- federated training with compression + eligibility scheduling -------
    global_model = make_mlp(input_dim, 2, hidden=(64, 32), seed=0, name="anomaly-detector")
    server = FederatedServer(
        global_model,
        clients,
        compressor=TopKSparsifier(fraction=0.1),
        scheduler=EligibilityScheduler(max_clients=6),
        eval_data=(eval_x, eval_y),
    )
    print("federated rounds (only charging / WiFi / idle machines participate):")
    for result in server.run(6, device_context=context):
        print(f"  round {result.round_index}: participants={len(result.participants):<3} "
              f"global_acc={result.global_accuracy:.3f} uplink={result.uplink_bytes / 1024:.1f}KB")
    print("total communication:", server.total_communication())

    # --- comparison against the (privacy-violating) centralized upper bound --
    central = centralized_baseline(make_mlp(input_dim, 2, hidden=(64, 32), seed=0), clients, (eval_x, eval_y), epochs=5)
    print(f"\ncentralized baseline accuracy: {central['accuracy']:.3f} "
          f"(federated reached {server.history[-1].global_accuracy:.3f} without moving raw data)")

    # --- personalization: each machine overfits to its own signature ---------
    results = server.personalize_all(epochs=3)
    gains = [r.get("personal_accuracy", 0.0) - r["global_accuracy"] for r in results.values()]
    print("\npersonalization (local fine-tuning on each machine):")
    print(f"  mean local accuracy: global={np.mean([r['global_accuracy'] for r in results.values()]):.3f} "
          f"personalized={np.mean([r.get('personal_accuracy', 0.0) for r in results.values()]):.3f} "
          f"(mean gain {np.mean(gains):+.3f})")


if __name__ == "__main__":
    main()
