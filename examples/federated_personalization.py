"""Federated predictive maintenance with personalization (paper Section III-D).

Scenario: vibration sensors on many machines detect anomalies.  Raw data
never leaves a machine; the global model is trained with federated
averaging under communication compression, and each machine finally
personalizes the global model to its own vibration signature.

Rounds run on the vectorized :class:`~repro.federated.FederatedEngine`:
every selected machine trains in one stacked batched pass, the scheduler
reads *live* fleet state (only charging / WiFi / idle machines
participate — and training itself drains their batteries), and a
:class:`~repro.federated.RoundScenario` injects mid-round dropouts plus a
byzantine machine whose scaled updates a
:class:`~repro.federated.TrimmedMeanAggregator` votes down.

Run with:  python examples/federated_personalization.py
"""

from __future__ import annotations

import numpy as np

from repro.data import ClientData, make_sensor_windows
from repro.devices import Fleet
from repro.federated import (
    EligibilityScheduler,
    FederatedClient,
    FederatedEngine,
    FederatedServer,
    RoundScenario,
    TopKSparsifier,
    TrimmedMeanAggregator,
    centralized_baseline,
)
from repro.nn import make_mlp


def main() -> None:
    n_machines = 12
    window, channels = 32, 3
    rng = np.random.default_rng(0)

    # Each machine has its own vibration signature -> naturally non-IID data.
    clients = []
    eval_x, eval_y = [], []
    for machine in range(n_machines):
        signature = float(rng.uniform(-1.0, 1.0))
        ds = make_sensor_windows(600, window=window, n_channels=channels, anomaly_fraction=0.15,
                                 machine_signature=signature, seed=machine)
        train, test = ds.split(0.3, seed=machine)
        clients.append(FederatedClient(
            ClientData(client_id=f"dev-{machine:04d}", x=train.x, y=train.y),
            local_epochs=2, lr=0.05, seed=machine,
        ))
        eval_x.append(test.x)
        eval_y.append(test.y)
    eval_x = np.concatenate(eval_x)
    eval_y = np.concatenate(eval_y)

    input_dim = window * channels
    fleet = Fleet.random(n_machines, seed=3)

    # --- federated training with compression + live fleet scheduling --------
    # Client ids match the fleet's device ids, so the engine derives the
    # scheduler context straight from each device's current battery/network
    # state — no hand-built context dicts.
    global_model = make_mlp(input_dim, 2, hidden=(64, 32), seed=0, name="anomaly-detector")
    engine = FederatedEngine(
        global_model,
        clients,
        compressor=TopKSparsifier(fraction=0.1),
        scheduler=EligibilityScheduler(max_clients=6),
        eval_data=(eval_x, eval_y),
        fleet=fleet,
    )
    print("federated rounds (only charging / WiFi / idle machines participate):")
    for result in engine.run(6):
        print(f"  round {result.round_index}: participants={len(result.participants):<3} "
              f"global_acc={result.global_accuracy:.3f} uplink={result.uplink_bytes / 1024:.1f}KB")
    print("total communication:", engine.total_communication())

    # --- comparison against the (privacy-violating) centralized upper bound --
    central = centralized_baseline(make_mlp(input_dim, 2, hidden=(64, 32), seed=0), clients, (eval_x, eval_y), epochs=5)
    print(f"\ncentralized baseline accuracy: {central['accuracy']:.3f} "
          f"(federated reached {engine.history[-1].global_accuracy:.3f} without moving raw data)")

    # --- adversarial conditions: dropouts + one byzantine machine ------------
    robust = FederatedEngine(
        make_mlp(input_dim, 2, hidden=(64, 32), seed=0, name="anomaly-detector-robust"),
        clients,
        aggregator=TrimmedMeanAggregator(trim_fraction=0.2),
        eval_data=(eval_x, eval_y),
        scenario=RoundScenario(dropout_rate=0.15, byzantine_ids={"dev-0003"},
                               byzantine_mode="flip", byzantine_scale=20.0, seed=7),
    )
    last = robust.run(4)[-1]
    print(f"\nunder dropouts + byzantine dev-0003 (trimmed-mean aggregation): "
          f"acc={last.global_accuracy:.3f} dropouts={sum(r.n_dropouts for r in robust.history)} "
          f"byzantine updates trimmed={sum(r.n_byzantine for r in robust.history)}")

    # --- personalization: each machine overfits to its own signature ---------
    server = FederatedServer(global_model, clients, eval_data=(eval_x, eval_y))
    results = server.personalize_all(epochs=3)
    gains = [r.get("personal_accuracy", 0.0) - r["global_accuracy"] for r in results.values()]
    print("\npersonalization (local fine-tuning on each machine):")
    print(f"  mean local accuracy: global={np.mean([r['global_accuracy'] for r in results.values()]):.3f} "
          f"personalized={np.mean([r.get('personal_accuracy', 0.0) for r in results.values()]):.3f} "
          f"(mean gain {np.mean(gains):+.3f})")


if __name__ == "__main__":
    main()
