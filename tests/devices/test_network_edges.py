"""Boundary behavior of the network model: offline links, zero bandwidth,
degenerate connectivity traces."""

import math

import numpy as np
import pytest

from repro.devices.network import (
    ConnectivityTrace,
    NetworkCondition,
    NetworkType,
    transfer_time_s,
)

# -- transfer_time / transfer_cost ----------------------------------------


def test_offline_transfer_time_is_infinite():
    cond = NetworkCondition.of(NetworkType.OFFLINE)
    assert not cond.online
    assert cond.transfer_time(1_000) == math.inf
    assert transfer_time_s(0, cond) == math.inf


def test_zero_bandwidth_link_is_offline_in_all_but_name():
    cond = NetworkCondition(kind=NetworkType.WIFI, bandwidth_bps=0.0, cost_per_mb=1.0)
    assert not cond.online
    assert cond.transfer_time(1_000) == math.inf
    assert cond.transfer_cost(1_000) == 0.0


def test_negative_bandwidth_link_is_offline():
    cond = NetworkCondition(kind=NetworkType.WIFI, bandwidth_bps=-5.0, cost_per_mb=1.0)
    assert not cond.online
    assert cond.transfer_time(1_000) == math.inf
    assert cond.transfer_cost(1_000) == 0.0


def test_offline_link_charges_nothing():
    # A payload that never crosses the link accrues no metered bytes,
    # even on a link type that nominally bills per MB.
    cond = NetworkCondition(kind=NetworkType.OFFLINE, cost_per_mb=0.5, metered=True)
    assert cond.transfer_cost(10_000_000) == 0.0


def test_online_metered_link_charges_per_mb():
    cond = NetworkCondition.of(NetworkType.CELLULAR)
    assert cond.online and cond.metered
    assert cond.transfer_cost(2_000_000) == pytest.approx(2.0 * cond.cost_per_mb)
    assert cond.transfer_cost(0) == 0.0


def test_online_transfer_time_is_latency_plus_serialization():
    cond = NetworkCondition(kind=NetworkType.WIFI, bandwidth_bps=1e6, latency_s=0.5)
    assert cond.transfer_time(125_000) == pytest.approx(0.5 + 1.0)


def test_negative_payload_raises():
    cond = NetworkCondition.of(NetworkType.WIFI)
    with pytest.raises(ValueError):
        cond.transfer_time(-1)
    with pytest.raises(ValueError):
        cond.transfer_cost(-1)
    with pytest.raises(ValueError):
        transfer_time_s(-1, NetworkCondition.of(NetworkType.OFFLINE))


def test_unknown_network_type_raises():
    with pytest.raises(KeyError):
        NetworkCondition.of("carrier-pigeon")


# -- ConnectivityTrace ----------------------------------------------------


def test_trace_rejects_empty_states():
    with pytest.raises(ValueError):
        ConnectivityTrace(states=())


def test_trace_rejects_unknown_state_names():
    with pytest.raises(KeyError):
        ConnectivityTrace(states=("wifi", "smoke-signal"))


def test_trace_rejects_initial_outside_states():
    with pytest.raises(ValueError):
        ConnectivityTrace(states=("wifi", "cellular"), initial="offline")


def test_trace_rejects_mismatched_transition_shape():
    with pytest.raises(ValueError):
        ConnectivityTrace(states=("wifi", "cellular"), transition=np.ones((3, 3)))


def test_trace_rejects_zero_rows():
    with pytest.raises(ValueError):
        ConnectivityTrace(states=("wifi", "cellular"), transition=np.zeros((2, 2)))


def test_single_state_trace_never_leaves_it():
    trace = ConnectivityTrace(states=("wifi",), seed=3)
    for cond in trace.sample(10):
        assert cond.kind == NetworkType.WIFI and cond.online


def test_trace_is_seed_deterministic():
    a = ConnectivityTrace(seed=7)
    b = ConnectivityTrace(seed=7)
    assert [c.kind for c in a.sample(50)] == [c.kind for c in b.sample(50)]


def test_trace_initial_state_is_respected():
    trace = ConnectivityTrace(initial="wifi", seed=0)
    assert trace.current.kind == NetworkType.WIFI


def test_mid_trace_offline_windows_are_unusable_but_recoverable():
    # Force a deterministic offline window: always hop to the next state.
    transition = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
    trace = ConnectivityTrace(
        states=(NetworkType.WIFI, NetworkType.OFFLINE, NetworkType.CELLULAR),
        transition=transition,
        initial=NetworkType.WIFI,
        seed=0,
    )
    kinds = [c.kind for c in trace.sample(6)]
    assert kinds == ["offline", "cellular", "wifi", "offline", "cellular", "wifi"]
    offline = NetworkCondition.of(kinds[0])
    assert offline.transfer_time(100) == math.inf and offline.transfer_cost(100) == 0.0
    assert NetworkCondition.of(kinds[1]).online
