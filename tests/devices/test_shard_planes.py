"""Lock-step suite for the shardable planes added in the PR-6 follow-on.

PR 6 left two pieces of per-device state outside the columnar store: RNG
*streams* (only the seeds were planes; the live generator hid on the
``EdgeDevice`` view) and made the per-device quota counters implicit.  Both
now live in :class:`~repro.devices.FleetState` planes so
``extract_rows`` / ``merge_rows`` can carry them across process boundaries.

The hypothesis property drives random op sequences through a store-backed
view and a standalone row-view oracle in lock-step and asserts the streams
and counters never diverge — including across an extract / mutate / merge
round-trip (the sharded backend's exact lifecycle).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import EdgeDevice, Fleet, FleetState, get_profile


# ---------------------------------------------------------------------------
# rng streams are plane-backed
# ---------------------------------------------------------------------------


def test_rng_stream_lives_in_the_plane():
    fleet = Fleet.random(4, seed=0)
    device = fleet.get("dev-0001")
    assert fleet.state.rng_streams[1] is None  # lazy until first use
    first = device.rng.random(3)
    assert fleet.state.rng_streams[1] is not None
    # The view reads the same generator object on every access.
    assert device.rng is fleet.state.rng_streams[1]
    # And the stream continues (no re-seeding between accesses).
    oracle = np.random.default_rng(int(fleet.state.seeds[1]))
    np.testing.assert_array_equal(first, oracle.random(3))
    np.testing.assert_array_equal(device.rng.random(5), oracle.random(5))


def test_rng_setter_installs_generator_in_plane():
    device = EdgeDevice("d0", get_profile("mcu-m4"), seed=7)
    generator = np.random.default_rng(1234)
    device.rng = generator
    assert device._state.rng_streams[0] is generator
    assert device.rng is generator


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_devices=st.integers(1, 12),
    ops=st.lists(
        st.tuples(st.integers(0, 11), st.integers(1, 8)),  # (device, n_draws)
        min_size=1,
        max_size=30,
    ),
)
def test_rng_streams_lockstep_with_oracle(seed, n_devices, ops):
    """Interleaved draws on many devices match per-seed oracle generators."""
    fleet = Fleet.random(n_devices, seed=seed)
    oracles = {
        i: np.random.default_rng(int(fleet.state.seeds[i])) for i in range(n_devices)
    }
    ids = fleet.state.device_ids
    for device_index, n_draws in ops:
        i = device_index % n_devices
        got = fleet.get(ids[i]).rng.random(n_draws)
        np.testing.assert_array_equal(got, oracles[i].random(n_draws))


# ---------------------------------------------------------------------------
# extract / mutate / merge round-trips (the sharded lifecycle)
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_devices=st.integers(2, 16),
    pre_draws=st.integers(0, 5),
    sub_draws=st.integers(1, 6),
    queries=st.integers(0, 50),
)
def test_extract_merge_carries_streams_and_counters(
    seed, n_devices, pre_draws, sub_draws, queries
):
    """extract_rows deep-copies live streams (parent unaffected while the
    shard works); merge_rows adopts the advanced streams and the mutated
    quota-counter planes, leaving the world exactly as if the draws and
    queries had happened in-process."""
    fleet = Fleet.random(n_devices, seed=seed)
    state = fleet.state
    ids = state.device_ids
    rows = np.arange(0, n_devices, 2)  # every other device into the shard

    # Oracles replay everything that should have happened per device.
    oracles = {i: np.random.default_rng(int(state.seeds[i])) for i in range(n_devices)}
    for i in range(n_devices):
        if pre_draws:
            np.testing.assert_array_equal(
                fleet.get(ids[i]).rng.random(pre_draws), oracles[i].random(pre_draws)
            )

    parent_states = {
        int(i): state.rng_streams[i].bit_generator.state
        for i in rows
        if state.rng_streams[i] is not None
    }
    sub = state.extract_rows(rows)
    for k, i in enumerate(rows):  # deep copy: distinct generator objects
        if state.rng_streams[i] is not None:
            assert sub.rng_streams[k] is not state.rng_streams[i]

    sub_fleet = Fleet.from_state(sub)
    for k, i in enumerate(rows):
        got = sub_fleet.get(ids[i]).rng.random(sub_draws)
        np.testing.assert_array_equal(got, oracles[i].random(sub_draws))
        sub.query_count[k] += queries

    # The parent's streams did not advance while the shard worked.
    for i, snapshot in parent_states.items():
        assert state.rng_streams[i].bit_generator.state == snapshot

    state.merge_rows(sub, rows)

    # Post-merge: every device continues exactly where the oracle says.
    for i in range(n_devices):
        np.testing.assert_array_equal(
            fleet.get(ids[i]).rng.random(3), oracles[i].random(3)
        )
    np.testing.assert_array_equal(state.query_count[rows], sub.query_count)


def test_extract_merge_quota_and_flash_counter_planes():
    """query_count and used_flash (the per-device quota counters) travel
    through the shard lifecycle; per-grant counters travel separately as
    ledger segments (billing.metering.append_segment)."""
    fleet = Fleet.random(6, seed=1)
    state = fleet.state
    state.query_count[:] = np.arange(6) * 10
    state.used_flash[:] = np.arange(6) * 100
    rows = np.array([1, 3, 4])
    sub = state.extract_rows(rows)
    np.testing.assert_array_equal(sub.query_count, [10, 30, 40])
    np.testing.assert_array_equal(sub.used_flash, [100, 300, 400])
    sub.query_count += 5
    sub.used_flash += 7
    state.merge_rows(sub, rows)
    np.testing.assert_array_equal(state.query_count, [0, 15, 20, 35, 45, 50])
    np.testing.assert_array_equal(state.used_flash, [0, 107, 200, 307, 407, 500])


def test_extract_rows_translates_interned_codes():
    """Interned-code planes (net_kind) re-intern into the sub-store's own
    tables, so shards built from arbitrary row subsets keep per-device
    network kinds even when the parent's code table is wider."""
    from repro.devices import NetworkCondition, NetworkType

    fleet = Fleet.random(9, seed=2)
    state = fleet.state
    for i, kind in enumerate(
        [NetworkType.WIFI, NetworkType.CELLULAR, NetworkType.OFFLINE] * 3
    ):
        state.set_network(i, NetworkCondition.of(kind))
    rows = np.array([2, 5, 8])  # all OFFLINE: sub-store interns one kind
    sub = state.extract_rows(rows)
    for k, i in enumerate(rows):
        assert sub.network_at(k).kind == state.network_at(i).kind
    # Merge back after changing one row's kind in the shard.
    sub.set_network(1, NetworkCondition.of(NetworkType.WIFI))
    state.merge_rows(sub, rows)
    assert state.network_at(5).kind == NetworkType.WIFI
