"""Tests for device profiles, cost models, battery, network, fleet and DES kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import (
    Battery,
    ConnectivityTrace,
    CostModel,
    DeviceClass,
    EdgeDevice,
    EventQueue,
    Fleet,
    InstalledArtifact,
    NetworkCondition,
    NetworkType,
    PowerState,
    get_profile,
    list_profiles,
    model_flops_and_bytes,
    random_fleet_profiles,
)
from repro.nn import make_mlp


class TestProfiles:
    def test_catalog_lookup(self):
        assert get_profile("mcu-m0").device_class == DeviceClass.MCU
        assert "phone-flagship" in list_profiles()
        with pytest.raises(KeyError):
            get_profile("quantum-pc")

    def test_capability_queries(self):
        mcu = get_profile("mcu-m0")
        server = get_profile("edge-server")
        assert not mcu.supports_op("conv2d")
        assert server.supports_op("conv2d")
        assert mcu.supports_bitwidth(8) and not mcu.supports_bitwidth(32)

    def test_random_fleet_mix(self):
        profiles = random_fleet_profiles(200, seed=0)
        names = {p.name for p in profiles}
        assert len(profiles) == 200
        assert len(names) >= 3

    def test_with_overrides(self):
        p = get_profile("mcu-m4").with_overrides(ram_bytes=1)
        assert p.ram_bytes == 1 and get_profile("mcu-m4").ram_bytes != 1


class TestCostModel:
    def test_latency_monotonic_in_device_speed(self, trained_mlp):
        cm = CostModel()
        slow = cm.model_inference_cost(get_profile("mcu-m0"), trained_mlp).latency_s
        fast = cm.model_inference_cost(get_profile("edge-server"), trained_mlp).latency_s
        assert slow > fast

    def test_native_low_precision_is_faster(self, trained_mlp):
        cm = CostModel()
        phone = get_profile("phone-mid")  # supports 8-bit natively
        fp32 = cm.model_inference_cost(phone, trained_mlp, bits=32).latency_s
        int8 = cm.model_inference_cost(phone, trained_mlp, bits=8).latency_s
        assert int8 < fp32

    def test_unsupported_precision_pays_penalty(self, trained_mlp):
        cm = CostModel()
        mcu = get_profile("mcu-m4")  # no 2-bit support
        int8 = cm.model_inference_cost(mcu, trained_mlp, bits=8)
        int2 = cm.model_inference_cost(mcu, trained_mlp, bits=2)
        assert int2.latency_s >= int8.latency_s

    def test_flops_estimator_positive(self, trained_cnn):
        flops, bytes_moved, peak = model_flops_and_bytes(trained_cnn)
        assert flops > 0 and bytes_moved > 0 and peak > 0

    def test_training_step_more_expensive(self, trained_mlp):
        cm = CostModel()
        p = get_profile("phone-mid")
        flops, b, peak = model_flops_and_bytes(trained_mlp)
        inf = cm.inference_cost(p, flops, b, peak)
        train = cm.training_step_cost(p, flops, b, peak)
        assert train.latency_s > inf.latency_s and train.energy_j > inf.energy_j

    def test_transmission_cost_offline(self):
        cm = CostModel()
        cost = cm.transmission_cost(get_profile("mcu-m4"), 1e6, 0.0)
        assert cost.latency_s == float("inf")

    def test_enclave_cost_requires_enclave(self, trained_mlp):
        cm = CostModel()
        base = cm.model_inference_cost(get_profile("phone-flagship"), trained_mlp)
        full = cm.enclave_cost(get_profile("phone-flagship"), base, 1.0)
        half = cm.enclave_cost(get_profile("phone-flagship"), base, 0.5)
        assert full.latency_s > half.latency_s > base.latency_s * 0.99
        with pytest.raises(ValueError):
            cm.enclave_cost(get_profile("mcu-m0"), base)

    def test_fits_device(self):
        cm = CostModel()
        mcu = get_profile("mcu-m0")
        assert cm.fits_device(mcu, model_bytes=1000, peak_memory=1000)
        assert not cm.fits_device(mcu, model_bytes=10**9, peak_memory=1000)


class TestBattery:
    def test_draw_and_deplete(self):
        b = Battery(capacity_j=10.0)
        assert b.draw(4.0) and b.level_j == 6.0
        assert not b.draw(100.0)
        assert b.state == PowerState.DEPLETED

    def test_plugged_in_never_depletes(self):
        b = Battery(capacity_j=10.0, plugged_in=True)
        assert b.draw(1e9)
        assert b.state == PowerState.PLUGGED_IN

    def test_low_power_state(self):
        b = Battery(capacity_j=100.0, level_j=10.0)
        assert b.state == PowerState.LOW_POWER

    def test_advance_charges_when_plugged(self):
        b = Battery(capacity_j=100.0, level_j=10.0, plugged_in=True, charge_rate_w=10.0)
        b.advance(5.0)
        assert b.level_j == 60.0

    def test_advance_idle_drain(self):
        b = Battery(capacity_j=100.0, level_j=50.0, idle_draw_w=1.0)
        b.advance(10.0)
        assert b.level_j == 40.0

    def test_infinite_capacity(self):
        b = Battery(capacity_j=float("inf"))
        assert b.state_of_charge == 1.0 and b.draw(1e12)

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            Battery().draw(-1.0)


class TestBatteryBatch:
    def test_full_fit_matches_repeated_draws_exactly(self):
        # Binary-exact energy: repeated subtraction and one multiply-subtract
        # are bit-identical.
        loop = Battery(capacity_j=64.0)
        batch = Battery(capacity_j=64.0)
        assert all(loop.draw(0.5) for _ in range(100))
        assert batch.draw_batch(0.5, 100) == 100
        assert batch.level_j == loop.level_j == 14.0

    def test_partial_fit_drains_to_zero(self):
        b = Battery(capacity_j=10.0)
        assert b.draw_batch(3.0, 5) == 3
        assert b.level_j == 0.0
        assert b.state == PowerState.DEPLETED

    def test_partial_fit_count_matches_loop(self):
        loop = Battery(capacity_j=10.0)
        n_ok = sum(1 for _ in range(5) if loop.draw(3.0))
        batch = Battery(capacity_j=10.0)
        assert batch.draw_batch(3.0, 5) == n_ok == 3
        assert batch.level_j == loop.level_j == 0.0

    def test_plugged_and_infinite_always_fit(self):
        assert Battery(capacity_j=10.0, plugged_in=True).draw_batch(1e9, 1000) == 1000
        assert Battery(capacity_j=float("inf")).draw_batch(1e9, 1000) == 1000

    def test_zero_energy_and_zero_batch(self):
        b = Battery(capacity_j=10.0)
        assert b.draw_batch(0.0, 50) == 50
        assert b.draw_batch(1.0, 0) == 0
        assert b.level_j == 10.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            Battery().draw_batch(-1.0, 5)
        with pytest.raises(ValueError):
            Battery().draw_batch(1.0, -5)

    def test_execute_batch_counts_and_aggregated_telemetry(self, trained_mlp):
        device = EdgeDevice("d1", get_profile("phone-mid"))
        device.battery.plugged_in = True
        cost = CostModel().model_inference_cost(device.profile, trained_mlp)
        ran = device.execute_batch(cost, 500)
        assert ran == 500 and device.query_count == 500
        assert len(device.telemetry_log) == 1
        assert device.telemetry_log[0]["count"] == 500.0
        assert device.execute_batch(cost, 10, record=False) == 10
        assert len(device.telemetry_log) == 1

    def test_execute_batch_battery_limited(self, trained_mlp):
        device = EdgeDevice("d1", get_profile("phone-mid"))
        cost = CostModel().model_inference_cost(device.profile, trained_mlp)
        device.battery.capacity_j = device.battery.level_j = cost.energy_j * 8
        ran = device.execute_batch(cost, 20, record=False)
        assert ran == 8 and device.query_count == 8
        assert device.battery.level_j == 0.0


class TestNetwork:
    def test_condition_factory(self):
        wifi = NetworkCondition.of(NetworkType.WIFI)
        offline = NetworkCondition.of(NetworkType.OFFLINE)
        assert wifi.online and not offline.online
        assert offline.transfer_time(100) == float("inf")

    def test_transfer_time_scales_with_payload(self):
        cell = NetworkCondition.of(NetworkType.CELLULAR)
        assert cell.transfer_time(1e6) > cell.transfer_time(1e3)

    def test_metered_flag(self):
        assert NetworkCondition.of(NetworkType.CELLULAR).metered
        assert not NetworkCondition.of(NetworkType.WIFI).metered

    def test_trace_is_deterministic(self):
        a = [c.kind for c in ConnectivityTrace(seed=5).sample(20)]
        b = [c.kind for c in ConnectivityTrace(seed=5).sample(20)]
        assert a == b

    def test_trace_visits_multiple_states(self):
        kinds = {c.kind for c in ConnectivityTrace(seed=1).sample(300)}
        assert len(kinds) >= 2

    def test_trace_invalid_matrix(self):
        with pytest.raises(ValueError):
            ConnectivityTrace(transition=np.zeros((2, 2)), states=("offline", "wifi"))


class TestFleetAndEvents:
    def test_fleet_random_composition(self):
        fleet = Fleet.random(60, seed=0)
        assert len(fleet) == 60
        assert sum(fleet.class_histogram().values()) == 60

    def test_install_and_storage_limits(self):
        device = EdgeDevice("d1", get_profile("mcu-m0"))
        device.install(InstalledArtifact("m", "1", size_bytes=1000))
        assert device.free_flash() == get_profile("mcu-m0").flash_bytes - 1000
        with pytest.raises(MemoryError):
            device.install(InstalledArtifact("big", "1", size_bytes=10**9))

    def test_install_replaces_same_artifact(self):
        device = EdgeDevice("d1", get_profile("mcu-m4"))
        device.install(InstalledArtifact("m", "1", size_bytes=1000))
        device.install(InstalledArtifact("m", "2", size_bytes=2000))
        assert device.installed["m"].version == "2"

    def test_execute_drains_battery_and_logs(self, trained_mlp):
        device = EdgeDevice("d1", get_profile("mcu-m4"))
        ok, cost = device.run_model(trained_mlp)
        assert ok and device.query_count == 1
        assert len(device.telemetry_log) == 1

    def test_training_eligibility(self):
        device = EdgeDevice("d1", get_profile("phone-mid"))
        device.idle = True
        device.battery.plugged_in = True
        device.network = NetworkCondition.of(NetworkType.WIFI)
        assert device.is_eligible_for_training()
        device.network = NetworkCondition.of(NetworkType.CELLULAR)
        assert not device.is_eligible_for_training()

    def test_fleet_selectors(self):
        fleet = Fleet.random(40, seed=3)
        assert all(d.network.online for d in fleet.online())
        assert set(fleet.summary()) >= {"n_devices", "classes", "online_fraction"}

    def test_event_queue_ordering_and_relative(self):
        sim = EventQueue()
        fired = []
        sim.schedule(3.0, "c", lambda s: fired.append("c"))
        sim.schedule(1.0, "a", lambda s: fired.append("a"))
        sim.schedule_in(2.0, "b", lambda s: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_event_queue_until_and_cancel(self):
        sim = EventQueue()
        fired = []
        e = sim.schedule(5.0, "later", lambda s: fired.append("later"))
        sim.schedule(1.0, "early", lambda s: fired.append("early"))
        sim.cancel(e)
        sim.run(until=10.0)
        assert fired == ["early"] and sim.now == 10.0

    def test_event_queue_rejects_past(self):
        sim = EventQueue(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(1.0, "past", lambda s: None)

    def test_cascading_events(self):
        sim = EventQueue()
        counter = {"n": 0}

        def tick(s):
            counter["n"] += 1
            if counter["n"] < 5:
                s.schedule_in(1.0, "tick", tick)

        sim.schedule(0.0, "tick", tick)
        sim.run()
        assert counter["n"] == 5 and sim.now == 4.0
