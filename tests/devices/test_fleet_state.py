"""Equivalence suite for the columnar fleet-state store (ROADMAP item 1).

The standing invariant: the scalar object API (`EdgeDevice` / `Battery`) is
the differential oracle, and every vectorized query or mutation on
:class:`~repro.devices.FleetState` must be bit-identical to the equivalent
loop over the object views.  The hypothesis suites drive random op
sequences (draw / draw_batch / advance / plug / install / execute_batch)
through a standalone object and a store-backed view in lock-step and
assert the observable state never diverges.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    Battery,
    BatteryView,
    EdgeDevice,
    ExecutionCost,
    Fleet,
    FleetState,
    InstalledArtifact,
    NetworkCondition,
    NetworkType,
    get_profile,
)
from repro.dispatch import resolve_engine


def _cost(energy_j: float) -> ExecutionCost:
    return ExecutionCost(latency_s=0.01, energy_j=energy_j, peak_memory_bytes=64.0, flops=1.0, bytes_moved=1.0)


def _battery_fields(b: Battery) -> tuple:
    return (b.capacity_j, b.level_j, b.plugged_in, b.low_power_threshold, b.charge_rate_w, b.idle_draw_w)


# ---------------------------------------------------------------------------
# Battery vs BatteryView: shared method bodies over store-backed fields
# ---------------------------------------------------------------------------

# One battery op: (kind, args).  Energies/durations mix zero, binary-exact
# values and awkward decimals to exercise the floating-point boundary paths
# (subnormal energies are excluded: ``level // subnormal`` overflows int()
# identically on both sides, which is equivalence but aborts the sequence).
_energy = st.one_of(st.just(0.0), st.floats(1e-6, 30.0, allow_nan=False))
_battery_ops = st.one_of(
    st.tuples(st.just("draw"), _energy),
    st.tuples(
        st.just("draw_batch"),
        st.tuples(_energy, st.integers(0, 40), st.booleans()),
    ),
    st.tuples(st.just("advance"), st.floats(0.0, 500.0, allow_nan=False)),
    st.tuples(st.just("plug"), st.none()),
    st.tuples(st.just("unplug"), st.none()),
)


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.one_of(st.floats(1.0, 200.0, allow_nan=False), st.just(float("inf"))),
    ops=st.lists(_battery_ops, min_size=1, max_size=30),
)
def test_battery_view_bitwise_equivalent(capacity, ops):
    """Every Battery method is bit-identical standalone vs store-backed."""
    oracle = Battery(capacity_j=capacity)
    state = FleetState(["dev-0"], [get_profile("phone-mid")])
    state.set_battery(0, Battery(capacity_j=capacity))
    view = BatteryView(state, 0)
    assert _battery_fields(oracle) == _battery_fields(view)
    for kind, args in ops:
        if kind == "draw":
            assert oracle.draw(args) == view.draw(args)
        elif kind == "draw_batch":
            energy, n, exact = args
            assert oracle.draw_batch(energy, n, exact=exact) == view.draw_batch(energy, n, exact=exact)
        elif kind == "advance":
            oracle.advance(args)
            view.advance(args)
        elif kind == "plug":
            oracle.plug()
            view.plug()
        else:
            oracle.unplug()
            view.unplug()
        assert _battery_fields(oracle) == _battery_fields(view)
        assert oracle.state == view.state
        assert oracle.state_of_charge == view.state_of_charge


@settings(max_examples=60, deadline=None)
@given(
    level=st.floats(0.0, 20.0, allow_nan=False),
    energy=st.floats(0.001, 2.0, allow_nan=False),
    n=st.integers(0, 64),
)
def test_draw_batch_exact_matches_draw_loop(level, energy, n):
    """``exact=True`` is bit-identical to n successive draw() calls — for
    any energy, including the exact-capacity boundaries the closed form
    documents as off-by-one (e.g. level=1.0, energy=0.1)."""
    batch = Battery(capacity_j=100.0, level_j=level)
    loop = Battery(capacity_j=100.0, level_j=level)
    served = batch.draw_batch(energy, n, exact=True)
    expected = sum(1 for _ in range(n) if loop.draw(energy))
    assert served == expected
    assert batch.level_j == loop.level_j


def test_draw_batch_exact_boundary_case():
    """The documented off-by-one: the loop admits 10, the division 9."""
    closed = Battery(capacity_j=1.0)
    exact = Battery(capacity_j=1.0)
    assert closed.draw_batch(0.1, 10) == 9
    assert exact.draw_batch(0.1, 10, exact=True) == 10


# ---------------------------------------------------------------------------
# EdgeDevice: standalone singleton store vs fleet-adopted row
# ---------------------------------------------------------------------------

_device_ops = st.one_of(
    st.tuples(
        st.just("execute_batch"),
        st.tuples(st.one_of(st.just(0.0), st.floats(1e-6, 5.0, allow_nan=False)), st.integers(0, 30), st.booleans()),
    ),
    st.tuples(st.just("advance"), st.floats(0.0, 200.0, allow_nan=False)),
    st.tuples(st.just("plug"), st.none()),
    st.tuples(st.just("unplug"), st.none()),
    st.tuples(st.just("idle"), st.booleans()),
    st.tuples(st.just("network"), st.sampled_from([NetworkType.WIFI, NetworkType.CELLULAR, NetworkType.OFFLINE])),
    st.tuples(st.just("install"), st.integers(1, 10_000)),
)


def _device_obs(d: EdgeDevice) -> tuple:
    return (
        _battery_fields(d.battery),
        d.network.kind,
        d.network.metered,
        d.idle,
        d.query_count,
        d.free_flash(),
        sorted(d.installed),
    )


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(_device_ops, min_size=1, max_size=25))
def test_device_standalone_vs_fleet_adopted(ops):
    """The same op sequence leaves identical state whether the device owns a
    one-row store or was adopted into a fleet's consolidated store."""
    solo = EdgeDevice("dev-0", get_profile("mcu-m4"), seed=3)
    member = EdgeDevice("dev-0", get_profile("mcu-m4"), seed=3)
    sibling = EdgeDevice("dev-1", get_profile("phone-mid"), seed=4)
    fleet = Fleet([member, sibling])
    assert fleet.get("dev-0") is member  # adoption preserves identity
    for k, (kind, args) in enumerate(ops):
        for d in (solo, member):
            if kind == "execute_batch":
                energy, n, exact = args
                d.execute_batch(_cost(energy), n, record=False, exact=exact)
            elif kind == "advance":
                d.battery.advance(args)
            elif kind == "plug":
                d.battery.plug()
            elif kind == "unplug":
                d.battery.unplug()
            elif kind == "idle":
                d.idle = args
            elif kind == "network":
                d.network = NetworkCondition.of(args)
            else:
                artifact = InstalledArtifact(f"m-{k}", "1", args)
                if d.can_install(args):
                    d.install(artifact)
        assert _device_obs(solo) == _device_obs(member)
        assert solo.context() == member.context()
        assert solo.is_eligible_for_training() == member.is_eligible_for_training()
    # The sibling's row was never touched by dev-0's ops.
    assert sibling.query_count == 0
    assert sibling.battery.level_j == sibling.battery.capacity_j


def test_fleet_adoption_copies_rows_and_rebinds():
    """Fleet construction copies device rows into one store and re-binds."""
    device = EdgeDevice("dev-0", get_profile("phone-mid"))
    device.battery.level_j = 123.0
    device.network = NetworkCondition.of(NetworkType.CELLULAR)
    device.idle = False
    old_state = device._state
    fleet = Fleet([device])
    assert device._state is fleet.state and device._state is not old_state
    assert fleet.state.level_j[0] == 123.0
    assert fleet.state.net_metered[0]
    assert not fleet.state.idle[0]
    # Mutations through the view land in the fleet store.
    device.battery.level_j = 50.0
    assert fleet.state.level_j[0] == 50.0


def test_duplicate_device_ids_rejected():
    devices = [EdgeDevice("dev-0", get_profile("phone-mid")) for _ in range(2)]
    with pytest.raises(ValueError, match="duplicate"):
        Fleet(devices)


# ---------------------------------------------------------------------------
# Vectorized queries and mutations vs the object loop
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def random_fleet():
    return Fleet.random(120, seed=11)


def test_vectorized_queries_match_object_loop(random_fleet):
    fleet = random_fleet
    devices = list(fleet)
    mask = fleet.training_eligible_mask()
    assert mask.tolist() == [d.is_eligible_for_training() for d in devices]
    assert fleet.state.online_mask().tolist() == [d.network.online for d in devices]
    assert fleet.state.power_state().tolist() == [d.battery.state for d in devices]
    soc = fleet.state.state_of_charge()
    assert soc.tolist() == [d.battery.state_of_charge for d in devices]
    assert [d.device_id for d in fleet.training_eligible()] == [
        d.device_id for d in devices if d.is_eligible_for_training()
    ]
    assert [d.device_id for d in fleet.online()] == [d.device_id for d in devices if d.network.online]


def test_context_table_and_rows_match_object_contexts(random_fleet):
    fleet = random_fleet
    contexts = [d.context() for d in fleet]
    rows = fleet.state.context_rows()
    assert rows == contexts
    table = fleet.context_table()
    assert sorted(table) == sorted(contexts[0])
    for i, ctx in enumerate(contexts):
        for key, value in ctx.items():
            assert table[key][i] == value
    # Selecting a subset by device id preserves the requested order.
    some = [contexts[5]["device_id"], contexts[2]["device_id"]]
    by_id = fleet.context_rows(some)
    assert list(by_id) == some
    assert by_id[some[0]] == contexts[5] and by_id[some[1]] == contexts[2]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    seconds=st.floats(0.0, 3_000.0, allow_nan=False),
)
def test_draw_batch_rows_and_advance_all_match_loop(seed, seconds):
    """Fleet-wide draw + advance are bit-identical to the per-device loop."""
    vec = Fleet.random(40, seed=seed)
    obj = Fleet.random(40, seed=seed)
    rng = np.random.default_rng(seed)
    energies = rng.uniform(0.0, 1.0, 40)
    counts = rng.integers(0, 30, 40)
    served_vec = vec.draw_batch_all(energies, counts)
    served_obj = [d.battery.draw_batch(float(energies[i]), int(counts[i])) for i, d in enumerate(obj)]
    assert served_vec.tolist() == served_obj
    vec.advance_all(seconds)
    for d in obj:
        d.battery.advance(seconds)
    assert vec.state.level_j.tolist() == obj.state.level_j.tolist()


def test_summary_matches_object_aggregation(random_fleet):
    fleet = random_fleet
    devices = list(fleet)
    summary = fleet.summary()
    assert summary["n_devices"] == len(devices)
    assert summary["classes"] == fleet.class_histogram()
    assert sum(summary["classes"].values()) == len(devices)
    assert summary["online_fraction"] == sum(d.network.online for d in devices) / len(devices)
    assert summary["training_eligible"] == sum(d.is_eligible_for_training() for d in devices)
    assert summary["mean_soc"] == pytest.approx(
        np.mean([d.battery.state_of_charge for d in devices]), abs=0.0
    )
    assert summary["total_queries"] == sum(d.query_count for d in devices)


# ---------------------------------------------------------------------------
# Construction paths
# ---------------------------------------------------------------------------


def test_fleet_random_is_deterministic_and_columnar():
    a = Fleet.random(64, seed=5)
    b = Fleet.random(64, seed=5)
    assert a.state.level_j.tolist() == b.state.level_j.tolist()
    assert a.state.plugged_in.tolist() == b.state.plugged_in.tolist()
    assert a.state.net_kind.tolist() == b.state.net_kind.tolist()
    assert a.state.idle.tolist() == b.state.idle.tolist()
    assert a.state.device_ids == b.state.device_ids
    # No device objects exist until asked for.
    assert not a._cache
    d = a.get("dev-0003")
    assert a._cache == {"dev-0003": d}
    assert a.get("dev-0003") is d


def test_fleet_from_state_wraps_without_materializing():
    state = FleetState([f"d{i}" for i in range(5)], [get_profile("phone-mid")] * 5, seeds=np.arange(5))
    state.level_j[:] = [10.0, 20.0, 30.0, 40.0, 50.0]
    fleet = Fleet.from_state(state)
    assert fleet.state is state
    assert len(fleet) == 5
    assert "d3" in fleet.devices and "nope" not in fleet.devices
    device = fleet.devices["d3"]
    assert device.battery.level_j == 40.0
    assert device._seed == 3
    device.battery.draw(15.0)
    assert state.level_j[3] == 25.0


def test_network_round_trip_and_custom_kinds():
    device = EdgeDevice("dev-0", get_profile("phone-mid"))
    custom = NetworkCondition(kind="satellite", bandwidth_bps=1e5, latency_s=0.6, cost_per_mb=2.0, metered=True)
    device.network = custom
    got = device.network
    assert got == custom
    assert device._state.net_kinds[-1] == "satellite"
    # Adoption re-interns custom kinds into the fleet store.
    fleet = Fleet([device, EdgeDevice("dev-1", get_profile("phone-mid"))])
    assert fleet.get("dev-0").network == custom


# ---------------------------------------------------------------------------
# Engine-toggle convention (repro.dispatch)
# ---------------------------------------------------------------------------


def test_resolve_engine_contract():
    assert resolve_engine(None, None) == "batched"
    assert resolve_engine("oracle", None) == "oracle"
    assert resolve_engine(None, None, default="oracle") == "oracle"
    with pytest.warns(DeprecationWarning):
        assert resolve_engine(None, False) == "oracle"
    with pytest.warns(DeprecationWarning):
        assert resolve_engine(None, True) == "batched"
    with pytest.raises(ValueError, match="not both"):
        resolve_engine("batched", True)
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("turbo", None)


def test_engine_keyword_on_dual_path_surfaces():
    """Every dual-path surface takes engine=; old spellings warn but work."""
    from repro.exchange import execute_graph, from_sequential
    from repro.nn import make_mlp
    from repro.observability import EdgeMonitor, KSDetector

    rng = np.random.default_rng(0)
    ref = rng.normal(size=(64, 4))

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # new spellings must not warn
        oracle_det = KSDetector(ref, engine="oracle")
        batched_det = KSDetector(ref, engine="batched")
        monitor = EdgeMonitor("dev-0", ref, detectors=("ks", "psi"), engine="oracle")
    assert not oracle_det.batched and batched_det.batched
    assert all(not det.batched for det in monitor.detectors.values())
    with pytest.warns(DeprecationWarning):
        legacy_det = KSDetector(ref, batched=False)
    assert not legacy_det.batched and legacy_det.engine == "oracle"
    live = rng.normal(size=(32, 4))
    assert oracle_det.score(live) == batched_det.score(live)

    model = make_mlp(4, 3, hidden=(8,), seed=0)
    x = rng.normal(size=(6, 4))
    graph = from_sequential(model)
    np.testing.assert_allclose(
        execute_graph(graph, x, engine="oracle"),
        execute_graph(graph, x, engine="batched"),
        atol=1e-9,
    )


def test_run_round_legacy_is_deprecated_alias():
    from repro.data import make_gaussian_blobs, partition_iid
    from repro.federated import FederatedClient, FederatedEngine
    from repro.nn import make_mlp

    def world():
        ds = make_gaussian_blobs(80, 6, 3, seed=0)
        parts = partition_iid(ds, 4, seed=0)
        clients = [FederatedClient(p, local_epochs=1, seed=i) for i, p in enumerate(parts)]
        return FederatedEngine(make_mlp(6, 3, hidden=(8,), seed=0), clients)

    via_alias, via_engine = world(), world()
    with pytest.warns(DeprecationWarning, match="run_round_legacy"):
        r_alias = via_alias.run_round_legacy(0)
    r_engine = via_engine.run_round(0, engine="oracle")
    np.testing.assert_array_equal(
        via_alias.global_model.get_flat_weights(), via_engine.global_model.get_flat_weights()
    )
    assert r_alias.participants == r_engine.participants
    assert r_alias.uplink_bytes == r_engine.uplink_bytes
