"""Property-based tests (hypothesis) on core invariants across the platform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.billing import BillingBackend, PricingPlan, UsageLedger
from repro.federated import QuantizedCompressor, SignSGDCompressor, TernaryCompressor, TopKSparsifier
from repro.nn.activations import log_softmax, softmax
from repro.observability import RunningMoments, StreamingHistogram
from repro.optimize import dequantize_array, fake_quantize, quantize_array
from repro.verification import MerkleTree, freivalds_check

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, shape=st.integers(1, 200), elements=finite_floats), st.sampled_from([2, 4, 8, 16]))
def test_quantization_error_bounded_by_half_step(x, bits):
    """Symmetric quantization error never exceeds half a quantization step."""
    q, scale, zero = quantize_array(x, bits=bits, symmetric=True)
    restored = dequantize_array(q, scale, zero)
    assert np.max(np.abs(restored - x)) <= 0.5 * scale + 1e-9


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, shape=st.integers(1, 300), elements=finite_floats), st.sampled_from([2, 4, 8]))
def test_fake_quantize_idempotent(x, bits):
    """Quantizing an already-quantized tensor changes nothing (fixed point)."""
    once = fake_quantize(x, bits)
    twice = fake_quantize(once, bits)
    np.testing.assert_allclose(once, twice, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, shape=st.tuples(st.integers(1, 8), st.integers(2, 6)), elements=finite_floats))
def test_softmax_is_a_distribution(x):
    p = softmax(x, axis=-1)
    assert np.all(p >= 0)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, atol=1e-9)
    np.testing.assert_allclose(np.exp(log_softmax(x, axis=-1)), p, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, shape=st.integers(2, 500), elements=finite_floats),
    arrays(np.float64, shape=st.integers(2, 500), elements=finite_floats),
)
def test_running_moments_merge_is_order_independent(a, b):
    """merge(A, B) gives the same moments as bulk-processing A ++ B."""
    left = RunningMoments()
    left.update_batch(a)
    right = RunningMoments()
    right.update_batch(b)
    left.merge(right)
    bulk = RunningMoments()
    bulk.update_batch(np.concatenate([a, b]))
    assert left.count == bulk.count
    assert left.mean == pytest.approx(bulk.mean, rel=1e-9, abs=1e-9)
    assert left.variance == pytest.approx(bulk.variance, rel=1e-6, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, shape=st.integers(1, 400), elements=st.floats(-5, 5, allow_nan=False)),
    arrays(np.float64, shape=st.integers(1, 400), elements=st.floats(-5, 5, allow_nan=False)),
)
def test_histogram_merge_equals_bulk(a, b):
    h1 = StreamingHistogram(-5, 5, bins=20)
    h2 = StreamingHistogram(-5, 5, bins=20)
    bulk = StreamingHistogram(-5, 5, bins=20)
    h1.update(a)
    h2.update(b)
    bulk.update(np.concatenate([a, b]))
    h1.merge(h2)
    np.testing.assert_array_equal(h1.counts, bulk.counts)
    assert h1.total == bulk.total


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.integers(2, 30), st.integers(2, 30), st.integers(0, 10**6))
def test_freivalds_completeness(n, k, m, seed):
    """A correct product is always accepted (completeness)."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, k))
    b = rng.normal(size=(k, m))
    assert freivalds_check(a, b, a @ b, n_trials=6, rng=rng)


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 20), st.integers(0, 10**6))
def test_freivalds_soundness_against_perturbation(n, seed):
    """A visibly perturbed product is rejected with overwhelming probability.

    A single perturbed entry is missed by one Freivalds trial with probability
    1/2 (the random 0/1 vector must select its column), so we use 64 trials:
    the residual acceptance probability of 2**-64 is negligible.
    """
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    b = rng.normal(size=(n, n))
    c = a @ b
    c[rng.integers(0, n), rng.integers(0, n)] += 1.0
    assert not freivalds_check(a, b, c, n_trials=64, rng=rng)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=16), st.data())
def test_merkle_inclusion_proofs_always_verify(leaves, data):
    tree = MerkleTree(leaves)
    index = data.draw(st.integers(0, len(leaves) - 1))
    assert MerkleTree.verify_proof(leaves[index], index, tree.proof(index), tree.root)


@settings(max_examples=25, deadline=None)
@given(
    arrays(np.float64, shape=st.integers(8, 500), elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False)),
    st.sampled_from(["topk", "signsgd", "ternary", "quantized"]),
)
def test_compressors_preserve_dimension_and_finiteness(update, name):
    compressor = {
        "topk": TopKSparsifier(0.2),
        "signsgd": SignSGDCompressor(),
        "ternary": TernaryCompressor(),
        "quantized": QuantizedCompressor(8),
    }[name]
    decoded, compressed = compressor.roundtrip(update)
    assert decoded.shape == update.shape
    assert np.all(np.isfinite(decoded))
    assert compressed.nbytes <= update.size * 4 + 16


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 40), st.integers(0, 10**6))
def test_usage_ledger_chain_always_verifies_and_counts(n_queries, seed):
    """However many queries are metered, the untampered chain verifies and
    the backend accepts and bills exactly the recorded count."""
    backend = BillingBackend(master_key=f"master-{seed}".encode())
    backend.register_plan(PricingPlan("m", price_per_query=0.001))
    key = backend.enroll_device("dev")
    ledger = UsageLedger("dev", key)
    ledger.add_grant(backend.sell_package("dev", "m", n_queries + 5), backend_key=backend.signing_key())
    for _ in range(n_queries):
        ledger.record_query("m")
    assert ledger.verify_chain()
    result = backend.reconcile(ledger.export())
    assert result.accepted
    assert result.n_entries == n_queries
