"""Tests for context-aware model selection and the TinyMLOpsPlatform facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ModelSelector, PlatformConfig, SelectionPolicy, TinyMLOpsPlatform
from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.devices import Fleet, NetworkCondition, NetworkType, get_profile
from repro.nn import make_mlp
from repro.optimize import VariantGenerator


@pytest.fixture(scope="module")
def variants(trained_mlp_module, blobs_module):
    _, test = blobs_module
    profiles = [get_profile("mcu-m4"), get_profile("phone-mid")]
    return VariantGenerator().generate(trained_mlp_module, test.x, test.y, profiles, bit_widths=(8, 2), sparsities=(0.5,))


@pytest.fixture(scope="module")
def blobs_module():
    ds = make_gaussian_blobs(900, 12, 4, seed=7)
    return ds.split(0.25, seed=7)


@pytest.fixture(scope="module")
def trained_mlp_module(blobs_module):
    train, _ = blobs_module
    model = make_mlp(12, 4, hidden=(32, 16), seed=0, name="selector_mlp")
    model.fit(train.x, train.y, epochs=6, lr=0.01, seed=0)
    return model


class TestModelSelection:
    def test_selects_feasible_variant(self, variants):
        selector = ModelSelector()
        result = selector.select(variants, get_profile("phone-mid"), network=NetworkCondition.of(NetworkType.WIFI))
        assert result.chosen is not None
        assert result.chosen.name in result.feasible

    def test_hard_constraints_filter(self, variants):
        selector = ModelSelector()
        policy = SelectionPolicy(min_accuracy=0.99, max_size_bytes=10)
        result = selector.select(variants, get_profile("phone-mid"), policy=policy)
        assert result.chosen is None

    def test_slow_network_prefers_smaller_artifact(self, variants):
        selector = ModelSelector()
        fast = selector.select(variants, get_profile("phone-mid"), network=NetworkCondition.of(NetworkType.WIFI), policy=SelectionPolicy.plugged_in())
        slow = selector.select(variants, get_profile("phone-mid"), network=NetworkCondition.of(NetworkType.LPWAN), policy=SelectionPolicy.slow_network())
        assert slow.chosen.size_bytes <= fast.chosen.size_bytes

    def test_low_battery_policy_prefers_cheaper_model(self, variants):
        selector = ModelSelector()
        plugged = selector.select(variants, get_profile("mcu-m4"), policy=SelectionPolicy.plugged_in())
        battery = selector.select(variants, get_profile("mcu-m4"), policy=SelectionPolicy.low_battery())
        assert battery.chosen.latency_s["mcu-m4"] <= plugged.chosen.latency_s["mcu-m4"] + 1e-9

    def test_policy_from_context(self):
        selector = ModelSelector()
        plugged = selector.policy_for_context({"power_state": "plugged_in"})
        low = selector.policy_for_context({"power_state": "on_battery", "state_of_charge": 0.1})
        metered = selector.policy_for_context({"network": "cellular", "metered": True})
        assert plugged.energy_weight < low.energy_weight
        assert metered.download_weight == 1.0

    def test_offline_device_still_gets_a_variant(self, variants):
        selector = ModelSelector()
        result = selector.select(variants, get_profile("phone-mid"), network=NetworkCondition.of(NetworkType.OFFLINE))
        assert result.chosen is not None

    def test_explain_lists_all_variants(self, variants):
        selector = ModelSelector()
        result = selector.select(variants, get_profile("phone-mid"))
        text = result.explain()
        for variant in variants:
            assert variant.name in text

    def test_cost_model_walked_once_per_variant(self, variants):
        # Regression: select() used to walk the cost model twice per variant,
        # discarding the first result whenever the latency table had a hit.
        from repro.devices import CostModel

        cost_model = CostModel()
        calls = []
        original = cost_model.model_inference_cost

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        cost_model.model_inference_cost = counting
        selector = ModelSelector(cost_model)
        result = selector.select(variants, get_profile("phone-mid"), network=NetworkCondition.of(NetworkType.WIFI))
        assert result.chosen is not None
        assert len(calls) == len(variants)

    def test_double_cost_selection_unchanged(self, variants):
        # The single-walk rewrite must not change what gets selected.
        fresh = ModelSelector().select(variants, get_profile("phone-mid"))
        again = ModelSelector().select(variants, get_profile("phone-mid"))
        assert fresh.chosen.name == again.chosen.name
        assert fresh.scores == again.scores


class TestPlatformEndToEnd:
    @pytest.fixture(scope="class")
    def platform_setup(self):
        ds = make_gaussian_blobs(1000, 12, 4, seed=21)
        train, test = ds.split(0.3, seed=21)
        fleet = Fleet.random(15, seed=21)
        platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8, 4), sparsities=(0.5,), seed=21))
        model = make_mlp(12, 4, hidden=(32, 16), seed=0, name="wakeword")
        model.fit(train.x, train.y, epochs=6, lr=0.01, seed=0)
        release = platform.release(model, test.x, test.y, watermark_owner="acme")
        deploy = platform.deploy(
            "wakeword",
            reference_x=train.x[:200],
            reference_predictions=model.predict_classes(train.x[:200]),
            num_classes=4,
            prepaid_queries=500,
        )
        return platform, fleet, train, test, release, deploy

    def test_release_registers_base_and_variants(self, platform_setup):
        platform, _, _, _, release, _ = platform_setup
        assert release["base_version"].startswith("wakeword:")
        assert len(release["derived_versions"]) == 3
        assert len(release["variants"]) >= 4
        assert release["pareto_front"]

    def test_deploy_covers_fleet(self, platform_setup):
        platform, fleet, _, _, _, deploy = platform_setup
        assert deploy["deployed"] == len(fleet)
        assert deploy["failed"] == 0
        assert platform.registry.stats()["n_deployed_devices"] == len(fleet)

    def test_serve_meters_and_monitors(self, platform_setup):
        platform, fleet, _, test, _, _ = platform_setup
        device_id = next(iter(fleet)).device_id
        result = platform.serve(device_id, "wakeword", test.x[:50])
        assert result["served"] + result["denied_quota"] + result["battery_failures"] == 50
        assert platform.ledgers[device_id].used("wakeword") >= result["served"]

    def test_quota_denies_after_prepaid_amount(self, platform_setup):
        platform, fleet, _, test, _, _ = platform_setup
        device_id = list(fleet.devices)[1]
        for _ in range(6):
            platform.serve(device_id, "wakeword", test.x[:100])
        result = platform.serve(device_id, "wakeword", test.x[:100])
        assert result["denied_quota"] > 0

    def test_sync_and_health(self, platform_setup):
        platform, fleet, _, test, _, _ = platform_setup
        online = [d for d in fleet if d.network.online]
        if not online:
            pytest.skip("random fleet has no online devices")
        device = online[0]
        platform.serve(device.device_id, "wakeword", test.x[:20])
        sync = platform.sync_device(device.device_id)
        assert sync["synced"] and sync["billing_accepted"]
        health = platform.fleet_health()
        assert "metrics" in health and "alerts" in health

    def test_offline_device_does_not_sync(self, platform_setup):
        platform, fleet, _, _, _, _ = platform_setup
        offline = [d for d in fleet if not d.network.online]
        if not offline:
            pytest.skip("random fleet has no offline devices")
        assert platform.sync_device(offline[0].device_id) == {"synced": False, "reason": "offline"}

    def test_federated_update_registers_new_version(self, platform_setup):
        platform, fleet, train, test, _, _ = platform_setup
        parts = partition_dirichlet(train, min(6, len(fleet)), alpha=1.0, seed=3)
        device_ids = list(fleet.devices)
        for i, part in enumerate(parts):
            part.client_id = device_ids[i]
        result = platform.federated_update("wakeword", parts, rounds=2, eval_data=(test.x, test.y))
        assert len(result["rounds"]) == 2
        assert result["new_version"].startswith("wakeword:")
        kinds = platform.registry.stats()["by_kind"]
        assert kinds.get("federated", 0) >= 1

    def test_protect_and_verify(self, platform_setup):
        platform, fleet, _, test, _, _ = platform_setup
        device_id = next(iter(fleet)).device_id
        protection = platform.protect("wakeword", device_id, poisoning="round")
        assert protection["encrypted_bytes"] > 0
        probs = protection["protected_model"].predict_proba(test.x[:10])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-6)
        report = platform.verify_inference("wakeword", test.x[:16])
        assert report["valid"]

    def test_summary_structure(self, platform_setup):
        platform, _, _, _, _, _ = platform_setup
        summary = platform.summary()
        assert set(summary) == {"fleet", "registry", "billing", "telemetry", "events"}
        assert summary["events"] >= 3
