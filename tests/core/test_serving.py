"""Tests for the batched ServingEngine, traffic generators and the
batched-vs-legacy equivalence guarantees (quota, battery, mixed denial)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.billing import BillingBackend, PricingPlan, UsageLedger
from repro.core import (
    SCENARIOS,
    FleetServeReport,
    PlatformConfig,
    ServingEngine,
    TinyMLOpsPlatform,
    TrafficGenerator,
    make_scenario,
)
from repro.data import make_gaussian_blobs
from repro.devices import Battery, CostModel, EdgeDevice, ExecutionCost, Fleet, get_profile
from repro.nn import make_mlp
from repro.observability import EdgeMonitor


class FixedCostModel(CostModel):
    """Cost model returning one fixed cost, for exact battery arithmetic."""

    def __init__(self, cost: ExecutionCost) -> None:
        super().__init__()
        self.cost = cost

    def model_inference_cost(self, profile, model, bits: int = 32) -> ExecutionCost:
        return self.cost


# Binary-exact energy so repeated subtraction and one multiply-subtract are
# bit-identical: the equivalence assertions below compare battery levels
# exactly.
EXACT_COST = ExecutionCost(latency_s=0.001, energy_j=0.5, peak_memory_bytes=1024.0, flops=1e3, bytes_moved=1e3)


def make_world(
    quota: int = 100,
    battery_j: float = 1e9,
    plugged: bool = False,
    with_monitor: bool = False,
    seed: int = 0,
):
    """A single-device serving world with controllable quota and battery."""
    device = EdgeDevice(
        "dev-0",
        get_profile("phone-mid"),
        battery=Battery(capacity_j=1e9, level_j=battery_j, plugged_in=plugged),
        seed=seed,
    )
    fleet = Fleet([device])
    backend = BillingBackend()
    backend.register_plan(PricingPlan("m", price_per_query=0.0015))
    key = backend.enroll_device("dev-0")
    ledger = UsageLedger("dev-0", key)
    ledger.add_grant(backend.sell_package("dev-0", "m", quota), backend_key=backend.signing_key())
    model = make_mlp(8, 3, hidden=(16,), seed=seed, name="m")
    monitors = {}
    if with_monitor:
        rng = np.random.default_rng(seed)
        ref = rng.normal(size=(100, 8))
        monitors["dev-0"] = EdgeMonitor("dev-0", ref, reference_predictions=model.predict_classes(ref), num_classes=3)
    engine = ServingEngine(
        fleet,
        cost_model=FixedCostModel(EXACT_COST),
        models={"m": model},
        ledgers={"dev-0": ledger},
        monitors=monitors,
    )
    return engine, ledger, device, backend


def queries(n: int, seed: int = 1) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, 8))


def assert_equivalent(kwargs: dict, n: int) -> tuple:
    """Serve the same window batched and legacy; assert identical outcomes."""
    x = queries(n)
    eng_b, led_b, dev_b, back_b = make_world(**kwargs)
    eng_l, led_l, dev_l, back_l = make_world(**kwargs)
    rb = eng_b.serve_batch("dev-0", "m", x)
    rl = eng_l.serve_batch_legacy("dev-0", "m", x)
    assert rb == rl
    assert led_b.used("m") == led_l.used("m")
    assert led_b.remaining("m") == led_l.remaining("m")
    assert dev_b.battery.level_j == dev_l.battery.level_j
    assert dev_b.query_count == dev_l.query_count
    bill_b = back_b.reconcile(led_b.export())
    bill_l = back_l.reconcile(led_l.export())
    assert bill_b.accepted and bill_l.accepted
    assert bill_b.billed_amount == bill_l.billed_amount
    return rb, rl


class TestServeBatchEquivalence:
    def test_all_served_when_resources_suffice(self):
        rb, _ = assert_equivalent(dict(quota=100, battery_j=1e9), n=50)
        assert rb.served == 50 and rb.denied_quota == 0 and rb.battery_failures == 0

    def test_quota_exhaustion_denies_suffix(self):
        rb, _ = assert_equivalent(dict(quota=30, battery_j=1e9), n=50)
        assert rb.served == 30 and rb.denied_quota == 20 and rb.battery_failures == 0

    def test_battery_exhaustion_fails_suffix(self):
        # 0.5 J per query, 10.0 J charge -> exactly 20 of 50 run.
        rb, _ = assert_equivalent(dict(quota=100, battery_j=10.0), n=50)
        assert rb.served == 20 and rb.battery_failures == 30 and rb.denied_quota == 0

    def test_mixed_quota_then_battery_denial(self):
        # Quota admits 40 of 50; battery covers 12 of those 40.
        rb, _ = assert_equivalent(dict(quota=40, battery_j=6.0), n=50)
        assert rb.served == 12 and rb.battery_failures == 28 and rb.denied_quota == 10

    def test_quota_consumed_even_for_battery_failures(self):
        x = queries(50)
        engine, ledger, device, _ = make_world(quota=40, battery_j=6.0)
        engine.serve_batch("dev-0", "m", x)
        # All 40 admitted queries consumed quota, though only 12 executed.
        assert ledger.used("m") == 40 and ledger.remaining("m") == 0
        assert device.query_count == 12
        assert device.battery.level_j == 0.0

    def test_repeated_windows_deplete_quota_like_legacy(self):
        kwargs = dict(quota=75, battery_j=1e9)
        eng_b, led_b, _, _ = make_world(**kwargs)
        eng_l, led_l, _, _ = make_world(**kwargs)
        x = queries(30)
        for _ in range(4):
            rb = eng_b.serve_batch("dev-0", "m", x)
            rl = eng_l.serve_batch_legacy("dev-0", "m", x)
            assert rb == rl
        assert led_b.used("m") == led_l.used("m") == 75
        assert led_b.verify_chain() and led_l.verify_chain()

    def test_monitor_sees_only_served_slice(self):
        x = queries(50)
        engine, _, _, _ = make_world(quota=30, with_monitor=True)
        result = engine.serve_batch("dev-0", "m", x)
        monitor = engine.monitors["dev-0"]
        # The historical bug paired the full window with served-sized
        # telemetry arrays; now both are exactly `served` long.
        assert monitor.telemetry.n_queries == result.served == 30

    def test_monitor_windows_identical_batched_and_legacy(self):
        x = queries(60)
        eng_b, _, _, _ = make_world(quota=45, with_monitor=True)
        eng_l, _, _, _ = make_world(quota=45, with_monitor=True)
        eng_b.serve_batch("dev-0", "m", x)
        eng_l.serve_batch_legacy("dev-0", "m", x)
        mon_b, mon_l = eng_b.monitors["dev-0"], eng_l.monitors["dev-0"]
        assert mon_b.telemetry.n_queries == mon_l.telemetry.n_queries == 45
        assert mon_b.any_drift() == mon_l.any_drift()

    def test_unknown_model_raises(self):
        engine, _, _, _ = make_world()
        with pytest.raises(KeyError):
            engine.serve_batch("dev-0", "ghost", queries(5))

    def test_empty_window(self):
        engine, ledger, _, _ = make_world()
        result = engine.serve_batch("dev-0", "m", queries(0))
        assert result.served == 0 and result.denied_quota == 0
        assert ledger.used("m") == 0


class TestServeFleet:
    def test_single_window_mapping(self):
        engine, _, _, _ = make_world(quota=100)
        report = engine.serve_fleet("m", {"dev-0": queries(40)})
        assert isinstance(report, FleetServeReport)
        assert report.requested == 40 and report.served == 40
        assert report.per_device["dev-0"]["served"] == 40
        assert report.n_windows == 1

    def test_multi_window_iterable_aggregates(self):
        engine, ledger, _, _ = make_world(quota=50)
        windows = [{"dev-0": queries(30)}, {"dev-0": queries(30)}]
        report = engine.serve_fleet("m", windows)
        assert report.n_windows == 2 and report.requested == 60
        assert report.served == 50 and report.denied_quota == 10
        assert ledger.remaining("m") == 0

    def test_platform_serve_fleet_end_to_end(self):
        ds = make_gaussian_blobs(400, 12, 4, seed=3)
        train, test = ds.split(0.3, seed=3)
        fleet = Fleet.random(8, seed=3)
        platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=3))
        model = make_mlp(12, 4, hidden=(16,), seed=3, name="fleetmodel")
        model.fit(train.x, train.y, epochs=2, lr=0.01, seed=3)
        platform.release(model, test.x, test.y)
        platform.deploy("fleetmodel", prepaid_queries=200)
        # Only devices that deployed successfully carry a ledger.
        windows = make_scenario("steady", list(platform.ledgers), 3, test.x, seed=3, rate=10.0)
        report = platform.serve_fleet("fleetmodel", windows)
        assert report.requested > 0
        assert report.served + report.denied_quota + report.battery_failures == report.requested
        total_used = sum(lg.used("fleetmodel") for lg in platform.ledgers.values())
        assert total_used == report.served + report.battery_failures

    def test_platform_serve_delegates_to_engine(self):
        ds = make_gaussian_blobs(300, 12, 4, seed=5)
        train, test = ds.split(0.3, seed=5)
        fleet = Fleet.random(4, seed=5)
        platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=5))
        model = make_mlp(12, 4, hidden=(16,), seed=5, name="srv")
        model.fit(train.x, train.y, epochs=2, lr=0.01, seed=5)
        platform.release(model, test.x, test.y)
        platform.deploy("srv", reference_x=train.x[:50], reference_predictions=model.predict_classes(train.x[:50]), num_classes=4, prepaid_queries=100)
        device_id = next(iter(fleet)).device_id
        result = platform.serve(device_id, "srv", test.x[:30])
        assert set(result) == {"served", "denied_quota", "battery_failures", "drift_detected"}
        assert result["served"] + result["denied_quota"] + result["battery_failures"] == 30
        # Engine and facade share state by reference.
        assert platform.serving.ledgers is platform.ledgers
        assert platform.serving.monitors is platform.monitors
        assert platform.serving.models is platform.deployed_models


class TestTrafficGenerators:
    ids = [f"d{i}" for i in range(6)]

    def test_all_scenarios_produce_valid_schedules(self):
        gen = TrafficGenerator(self.ids, seed=0)
        for name in SCENARIOS:
            schedule = getattr(gen, name)(10)
            assert schedule.shape == (10, 6)
            assert schedule.dtype == np.int64
            assert (schedule >= 0).all()

    def test_seeded_schedules_are_reproducible(self):
        a = TrafficGenerator(self.ids, seed=42).bursty(20)
        b = TrafficGenerator(self.ids, seed=42).bursty(20)
        np.testing.assert_array_equal(a, b)

    def test_overload_spike_dominates(self):
        schedule = TrafficGenerator(self.ids, seed=1).overload(9, rate=10.0, overload_factor=20.0)
        per_window = schedule.sum(axis=1)
        assert per_window[4] == per_window.max()
        assert per_window[4] > 3 * np.delete(per_window, 4).mean()

    def test_diurnal_peak_exceeds_trough(self):
        schedule = TrafficGenerator(self.ids, seed=2).diurnal(24, peak_rate=40.0, trough_rate=2.0, period=24)
        per_window = schedule.sum(axis=1)
        assert per_window[6] > per_window[18]  # sin peak at t=6, trough at t=18

    def test_windows_materialize_schedule_counts(self):
        gen = TrafficGenerator(self.ids, seed=0)
        schedule = gen.steady(4, rate=7.0)
        pool = np.zeros((50, 3))
        windows = list(gen.windows(schedule, pool))
        assert len(windows) == 4
        for row, window in zip(schedule, windows):
            assert set(window) == set(self.ids)
            for device_id, n in zip(self.ids, row):
                assert window[device_id].shape == (int(n), 3)

    def test_make_scenario_rejects_unknown_name(self):
        with pytest.raises(KeyError):
            next(make_scenario("tsunami", self.ids, 2, np.zeros((10, 3))))

    def test_empty_device_list_rejected(self):
        with pytest.raises(ValueError):
            TrafficGenerator([])


class TestCompiledServing:
    """serve_batch through a compiled plan must match the model path exactly."""

    def test_compile_model_registers_plan_and_matches_model_path(self):
        x = queries(60)
        eng_plan, led_p, dev_p, _ = make_world(with_monitor=True)
        eng_model, led_m, dev_m, _ = make_world(with_monitor=True)
        plan = eng_plan.compile_model("m")
        assert eng_plan.plans["m"] is plan
        rp = eng_plan.serve_batch("dev-0", "m", x)
        rm = eng_model.serve_batch("dev-0", "m", x)
        assert rp == rm
        assert led_p.used("m") == led_m.used("m")
        assert dev_p.battery.level_j == dev_m.battery.level_j
        # the two paths fed their monitors the same served slice and preds
        mon_p, mon_m = eng_plan.monitors["dev-0"], eng_model.monitors["dev-0"]
        assert mon_p.any_drift() == mon_m.any_drift()

    def test_plan_predictions_equal_model_predictions(self):
        engine, _, _, _ = make_world()
        engine.compile_model("m")
        x = queries(200, seed=5)
        np.testing.assert_array_equal(
            engine._predict_classes("m", x), engine.models["m"].predict_classes(x)
        )

    def test_serve_fleet_uses_compiled_plan(self):
        engine, _, _, _ = make_world(quota=10_000, with_monitor=True)
        engine.compile_model("m")
        report = engine.serve_fleet("m", {"dev-0": queries(40)})
        assert report.served == 40 and report.requested == 40

    def test_federated_update_recompiles_serving_plan(self):
        """Weight updates must not leave the serving plan predicting with
        stale folded weights."""
        from repro.core import PlatformConfig, TinyMLOpsPlatform
        from repro.data import make_gaussian_blobs, partition_dirichlet
        from repro.devices import Fleet

        ds = make_gaussian_blobs(400, 12, 4, seed=3)
        train, test = ds.split(0.3, seed=3)
        fleet = Fleet.random(6, seed=3)
        platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=3))
        model = make_mlp(12, 4, hidden=(16,), seed=3, name="fed-m")
        model.fit(train.x, train.y, epochs=2, lr=0.01, seed=3)
        platform.release(model, test.x, test.y)
        platform.deploy("fed-m", prepaid_queries=100)
        parts = partition_dirichlet(train, 4, alpha=1.0, seed=3)
        platform.federated_update("fed-m", parts, rounds=1)
        plan = platform.serving.plans["fed-m"]
        np.testing.assert_array_equal(
            plan.run(test.x[:32]).argmax(-1), model.predict_classes(test.x[:32])
        )

    def test_recompile_preserves_custom_plan_options(self):
        """A rebuild after weight updates must keep a custom lowering."""
        from repro.exchange import PassPipeline, annotate_quantization

        engine, _, _, _ = make_world()
        custom = PassPipeline.standard_inference().add(lambda g: annotate_quantization(g, bits=8))
        plan = engine.compile_model("m", pipeline=custom)
        assert plan.graph.metadata.get("bits") == 8
        rebuilt = engine.compile_model("m")  # no args: reuse stored options
        assert rebuilt.graph.metadata.get("bits") == 8


def make_fleet_world(n_devices: int = 6, quota: int = 1000, with_plan: bool = True, seed: int = 0):
    """A multi-device serving world with shared reference monitors."""
    rng = np.random.default_rng(seed)
    devices = [
        EdgeDevice(
            f"dev-{i}",
            get_profile("phone-mid"),
            battery=Battery(capacity_j=1e9, level_j=1e9),
            seed=seed + i,
        )
        for i in range(n_devices)
    ]
    fleet = Fleet(devices)
    backend = BillingBackend()
    backend.register_plan(PricingPlan("m", price_per_query=0.0015))
    model = make_mlp(8, 3, hidden=(16,), seed=seed, name="m")
    ref = rng.normal(size=(120, 8))
    ref_preds = model.predict_classes(ref)
    ledgers, monitors = {}, {}
    for i in range(n_devices):
        key = backend.enroll_device(f"dev-{i}")
        ledger = UsageLedger(f"dev-{i}", key)
        ledger.add_grant(backend.sell_package(f"dev-{i}", "m", quota), backend_key=backend.signing_key())
        ledgers[f"dev-{i}"] = ledger
        monitors[f"dev-{i}"] = EdgeMonitor(
            f"dev-{i}", ref, reference_predictions=ref_preds, num_classes=3
        )
    engine = ServingEngine(
        fleet,
        cost_model=FixedCostModel(EXACT_COST),
        models={"m": model},
        ledgers=ledgers,
        monitors=monitors,
    )
    if with_plan:
        engine.compile_model("m")
    return engine, ledgers, devices


def fleet_windows(n_devices: int, n_windows: int = 3, seed: int = 1, widths=(20, 35)):
    rng = np.random.default_rng(seed)
    return [
        {
            f"dev-{i}": rng.normal(loc=0.5 * w, size=(widths[i % len(widths)], 8))
            for i in range(n_devices)
        }
        for w in range(n_windows)
    ]


class TestFleetSweep:
    """serve_fleet's one-sweep-per-window path vs the per-device oracle."""

    def assert_fleet_equivalent(self, with_plan: bool, quota: int = 1000, battery_j: float = 1e9):
        windows = fleet_windows(6)
        eng_b, led_b, dev_b = make_fleet_world(quota=quota, with_plan=with_plan)
        eng_l, led_l, dev_l = make_fleet_world(quota=quota, with_plan=with_plan)
        for d in dev_b + dev_l:
            d.battery.level_j = battery_j
        rb = eng_b.serve_fleet("m", [dict(w) for w in windows])
        rl = eng_l.serve_fleet("m", [dict(w) for w in windows], batched=False)
        assert rb.as_dict() == rl.as_dict()
        assert rb.per_device == rl.per_device
        for i in range(6):
            did = f"dev-{i}"
            assert led_b[did].used("m") == led_l[did].used("m")
            assert dev_b[i].battery.level_j == dev_l[i].battery.level_j
            mon_b, mon_l = eng_b.monitors[did], eng_l.monitors[did]
            assert mon_b.drift_events == mon_l.drift_events
            for name in mon_b.detectors:
                assert [r.statistic for r in mon_b.detectors[name].history] == [
                    r.statistic for r in mon_l.detectors[name].history
                ]
            assert mon_b.build_report().as_dict() == mon_l.build_report().as_dict()

    def test_sweep_equals_per_device_loop_with_plan(self):
        self.assert_fleet_equivalent(with_plan=True)

    def test_sweep_equals_per_device_loop_without_plan(self):
        self.assert_fleet_equivalent(with_plan=False)

    def test_sweep_equals_per_device_loop_under_quota_pressure(self):
        # 6 devices x 3 windows x 20-35 queries vs 50 quota: denial tails.
        self.assert_fleet_equivalent(with_plan=True, quota=50)

    def test_sweep_equals_per_device_loop_under_battery_pressure(self):
        self.assert_fleet_equivalent(with_plan=True, battery_j=EXACT_COST.energy_j * 40)

    def test_one_compiled_sweep_per_window(self):
        """The instrumentation check: one run_many (and one underlying plan
        execution) per (model, window), instead of one plan.run per device."""
        windows = fleet_windows(6)
        engine, _, _ = make_fleet_world()
        plan = engine.plans["m"]
        calls = {"run": 0, "run_many": 0}
        orig_run, orig_many = plan.run, plan.run_many

        def counting_run(*args, **kwargs):
            calls["run"] += 1
            return orig_run(*args, **kwargs)

        def counting_many(*args, **kwargs):
            calls["run_many"] += 1
            return orig_many(*args, **kwargs)

        plan.run, plan.run_many = counting_run, counting_many
        engine.serve_fleet("m", windows)
        assert calls["run_many"] == len(windows)
        assert calls["run"] == len(windows)  # run_many -> one stacked execution

    def test_legacy_path_runs_plan_per_device(self):
        windows = fleet_windows(6)
        engine, _, _ = make_fleet_world()
        plan = engine.plans["m"]
        calls = {"run": 0}
        orig_run = plan.run

        def counting_run(*args, **kwargs):
            calls["run"] += 1
            return orig_run(*args, **kwargs)

        plan.run = counting_run
        engine.serve_fleet("m", windows, batched=False)
        assert calls["run"] == len(windows) * 6

    def test_fleet_monitor_cache_invalidated_on_redeploy(self):
        engine, _, _ = make_fleet_world(n_devices=2)
        engine.serve_fleet("m", fleet_windows(2, n_windows=1))
        fm_first = engine._fleet_monitor()
        rng = np.random.default_rng(9)
        engine.monitors["dev-0"] = EdgeMonitor("dev-0", rng.normal(size=(50, 8)))
        assert engine._fleet_monitor() is not fm_first

    def test_unmonitored_devices_still_served(self):
        engine, _, _ = make_fleet_world(n_devices=3)
        del engine.monitors["dev-1"]
        report = engine.serve_fleet("m", fleet_windows(3, n_windows=1))
        assert report.per_device["dev-1"]["served"] > 0
