"""Shared fixtures: small datasets and pre-trained models reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_gaussian_blobs, make_synthetic_digits
from repro.nn import make_mlp, make_tiny_cnn


@pytest.fixture(scope="session")
def blobs():
    """A small, well-separated classification dataset (train, test)."""
    ds = make_gaussian_blobs(n_samples=900, n_features=12, n_classes=4, cluster_std=1.0, seed=7)
    return ds.split(test_fraction=0.25, seed=7)


@pytest.fixture(scope="session")
def trained_mlp(blobs):
    """An MLP trained to high accuracy on the blobs dataset."""
    train, _ = blobs
    model = make_mlp(12, 4, hidden=(32, 16), seed=0, name="fixture_mlp")
    model.fit(train.x, train.y, epochs=8, batch_size=32, lr=0.01, seed=0)
    return model


@pytest.fixture(scope="session")
def digits():
    """Small synthetic-digit image dataset (train, test)."""
    ds = make_synthetic_digits(n_samples=500, image_size=12, seed=3)
    return ds.split(test_fraction=0.25, seed=3)


@pytest.fixture(scope="session")
def trained_cnn(digits):
    """A tiny CNN briefly trained on the synthetic digits."""
    train, _ = digits
    model = make_tiny_cnn((12, 12, 1), 10, filters=(4, 8), dense_width=16, seed=0, name="fixture_cnn")
    model.fit(train.x, train.y, epochs=2, batch_size=32, lr=0.005, seed=0)
    return model


@pytest.fixture()
def rng():
    """A deterministic random generator for per-test noise."""
    return np.random.default_rng(123)
