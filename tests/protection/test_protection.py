"""Tests for watermarking, encryption, model extraction and its defences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import make_mlp
from repro.optimize import QuantizationConfig, quantize_model
from repro.protection import (
    ExtractionDetector,
    IntegrityError,
    ModelKeyManager,
    ProtectedModel,
    QueryBasedExtractor,
    StaticWatermarker,
    TriggerSetWatermarker,
    decrypt_blob,
    direct_theft,
    encrypt_blob,
    evaluate_robustness,
    get_poisoning,
    noisy_probabilities,
    reverse_sigmoid_poisoning,
    round_probabilities,
    top1_only,
)


class TestStaticWatermark:
    def test_embed_and_verify(self, trained_mlp, blobs):
        _, test = blobs
        wm = StaticWatermarker(message_bits=32, seed=1)
        marked, key = wm.embed(trained_mlp, owner="acme")
        result = wm.verify(marked, key)
        assert result["bit_error_rate"] == 0.0 and result["matched"] == 1.0
        # Fidelity: accuracy essentially unchanged.
        base_acc = trained_mlp.evaluate(test.x, test.y)["accuracy"]
        assert marked.evaluate(test.x, test.y)["accuracy"] >= base_acc - 0.02

    def test_unmarked_model_fails_verification(self, trained_mlp):
        wm = StaticWatermarker(message_bits=64, seed=2)
        _, key = wm.embed(trained_mlp, owner="acme")
        unrelated = make_mlp(12, 4, hidden=(32, 16), seed=42)
        result = wm.verify(unrelated, key)
        assert result["bit_error_rate"] > 0.25

    def test_watermark_survives_8bit_quantization(self, trained_mlp):
        wm = StaticWatermarker(message_bits=32, strength=0.1, seed=3)
        marked, key = wm.embed(trained_mlp, owner="acme")
        quantized = quantize_model(marked, QuantizationConfig(bits=8))
        assert wm.verify(quantized, key)["matched"] == 1.0

    def test_robustness_report_structure(self, trained_mlp, blobs):
        train, _ = blobs
        wm = StaticWatermarker(message_bits=16, seed=4)
        marked, key = wm.embed(trained_mlp, owner="acme")
        rows = evaluate_robustness(wm, marked, key, x_finetune=train.x[:100], y_finetune=train.y[:100], prune_sparsities=(0.5,), quant_bits=(8,), finetune_epochs=1)
        attacks = [r["attack"] for r in rows]
        assert attacks == ["none", "prune", "quantize", "finetune"]
        assert rows[0]["bit_error_rate"] == 0.0


class TestTriggerWatermark:
    def test_embed_verify_and_fidelity(self, trained_mlp, blobs):
        train, test = blobs
        wm = TriggerSetWatermarker(n_triggers=12, epochs=3, seed=5)
        marked, key = wm.embed(trained_mlp, train.x, train.y, num_classes=4, owner="acme")
        result = wm.verify(marked, key)
        assert result["matched"] == 1.0 and result["trigger_accuracy"] > 0.8
        assert marked.evaluate(test.x, test.y)["accuracy"] > 0.85

    def test_unrelated_model_near_chance_on_triggers(self, trained_mlp, blobs):
        train, _ = blobs
        wm = TriggerSetWatermarker(n_triggers=20, epochs=2, seed=6)
        _, key = wm.embed(trained_mlp, train.x, train.y, num_classes=4, owner="acme")
        stranger = make_mlp(12, 4, hidden=(16,), seed=99)
        result = wm.verify(stranger, key)
        assert result["matched"] == 0.0


class TestEncryption:
    def test_roundtrip(self):
        blob = encrypt_blob(b"model-weights", key=b"k" * 32, nonce=b"n" * 16)
        assert decrypt_blob(blob, b"k" * 32) == b"model-weights"

    def test_ciphertext_differs_from_plaintext(self):
        blob = encrypt_blob(b"model-weights-123456", key=b"k" * 32)
        assert blob.ciphertext != b"model-weights-123456"

    def test_tamper_detected(self):
        blob = encrypt_blob(b"payload", key=b"secret")
        tampered = type(blob)(nonce=blob.nonce, ciphertext=blob.ciphertext[:-1] + b"X", tag=blob.tag)
        with pytest.raises(IntegrityError):
            decrypt_blob(tampered, b"secret")

    def test_wrong_key_detected(self):
        blob = encrypt_blob(b"payload", key=b"secret")
        with pytest.raises(IntegrityError):
            decrypt_blob(blob, b"other")

    def test_key_manager_per_device_keys_and_revocation(self, trained_mlp):
        km = ModelKeyManager()
        k1 = km.device_key("m", "dev-1")
        k2 = km.device_key("m", "dev-2")
        assert k1 != k2
        wrapped = km.wrap_model(trained_mlp.to_bytes(), "m", "dev-1")
        assert km.unwrap_model(wrapped, "m", "dev-1") == trained_mlp.to_bytes()
        km.revoke_device("dev-1")
        with pytest.raises(PermissionError):
            km.device_key("m", "dev-1")

    def test_direct_theft_blocked_by_encryption(self, trained_mlp):
        assert direct_theft(trained_mlp, encrypted=True) is None
        stolen = direct_theft(trained_mlp, encrypted=False)
        np.testing.assert_allclose(stolen.get_flat_weights(), trained_mlp.get_flat_weights())


class TestPoisoning:
    def test_all_poisons_preserve_argmax(self, trained_mlp, blobs):
        _, test = blobs
        probs = trained_mlp.predict_proba(test.x)
        for name in ("round", "top1", "noise", "reverse_sigmoid"):
            poisoned = get_poisoning(name)(probs)
            np.testing.assert_array_equal(poisoned.argmax(axis=1), probs.argmax(axis=1))
            np.testing.assert_allclose(poisoned.sum(axis=1), 1.0, atol=1e-6)

    def test_top1_removes_confidence_information(self, trained_mlp, blobs):
        _, test = blobs
        probs = trained_mlp.predict_proba(test.x[:50])
        flat = top1_only(probs)
        assert set(np.unique(flat)) <= {0.0, 1.0}

    def test_reverse_sigmoid_distorts_soft_outputs(self, rng):
        # Use moderately confident probabilities: on saturated (0/1) outputs the
        # perturbation is tiny by design, so we test the informative regime.
        from repro.nn.activations import softmax as _softmax

        probs = _softmax(rng.normal(size=(50, 4)), axis=-1)
        poisoned = reverse_sigmoid_poisoning(probs)
        assert np.mean(np.abs(poisoned - probs)) > 0.01
        np.testing.assert_array_equal(poisoned.argmax(axis=1), probs.argmax(axis=1))

    def test_unknown_poison(self):
        with pytest.raises(KeyError):
            get_poisoning("antidote")


class TestExtractionAndDetection:
    def test_extraction_succeeds_on_unprotected_model(self, trained_mlp, blobs):
        train, test = blobs
        extractor = QueryBasedExtractor(lambda: make_mlp(12, 4, hidden=(32, 16), seed=21), query_budget=1200, epochs=5, seed=0)
        exposed = ProtectedModel(trained_mlp, poisoning="none")
        result = extractor.run(lambda x: exposed.predict_logits(x, "attacker"), (12,), test.x, test.y, reference_x=train.x)
        assert result.agreement_with_victim > 0.85
        assert result.surrogate_accuracy > 0.8

    def test_top1_poisoning_with_tiny_budget_hurts_clone(self, trained_mlp, blobs):
        train, test = blobs
        def run(poison):
            extractor = QueryBasedExtractor(lambda: make_mlp(12, 4, hidden=(32, 16), seed=22), query_budget=60, epochs=5, seed=1)
            protected = ProtectedModel(trained_mlp, poisoning=poison)
            return extractor.run(lambda x: protected.predict_logits(x, "attacker"), (12,), test.x, test.y, reference_x=None)

        soft = run("none")
        hard = run("top1")
        assert hard.agreement_with_victim <= soft.agreement_with_victim + 0.05

    def test_poisoning_keeps_legitimate_accuracy(self, trained_mlp, blobs):
        _, test = blobs
        base_acc = trained_mlp.evaluate(test.x, test.y)["accuracy"]
        for name in ("round", "noise", "reverse_sigmoid"):
            protected = ProtectedModel(trained_mlp, poisoning=name)
            assert protected.accuracy(test.x, test.y) >= base_acc - 0.02

    def test_detector_flags_synthetic_queries_not_benign(self, trained_mlp, blobs, rng):
        train, test = blobs
        detector = ExtractionDetector(train.x, threshold=0.3, seed=0)
        attack_queries = rng.uniform(-3, 3, size=(128, 12))
        detector.observe("attacker", attack_queries)
        detector.observe("benign", test.x[:128])
        assert detector.check("attacker")
        assert not detector.check("benign")
        assert detector.flagged_clients() == ["attacker"]

    def test_protected_model_denies_flagged_clients(self, trained_mlp, blobs, rng):
        train, test = blobs
        detector = ExtractionDetector(train.x, threshold=0.3, seed=0)
        protected = ProtectedModel(trained_mlp, poisoning="none", detector=detector, deny_flagged=True)
        attack_queries = rng.uniform(-3, 3, size=(200, 12))
        out = protected.predict_proba(attack_queries, client_id="attacker")
        # After being flagged, outputs degrade to uniform for the attacker.
        assert np.allclose(out[-1], 0.25, atol=1e-6)
        benign_out = protected.predict_proba(test.x[:50], client_id="user")
        assert not np.allclose(benign_out[0], 0.25)
