"""Tests for drift detectors, sketches, telemetry, privacy and alerting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DriftingStream, DriftSpec, make_gaussian_blobs
from repro.observability import (
    AlertEngine,
    AlertRule,
    CountMinSketch,
    EdgeMonitor,
    JSDetector,
    KSDetector,
    MMDDetector,
    P2Quantile,
    PredictionDistributionMonitor,
    PSIDetector,
    QueryRecord,
    ReservoirSample,
    RunningMoments,
    StreamingHistogram,
    TelemetryAggregator,
    TelemetryRecorder,
    debias_histogram,
    epsilon_for_flip_probability,
    jensen_shannon_divergence,
    ks_statistic,
    laplace_mechanism,
    mmd_rbf,
    population_stability_index,
    privatize_histogram,
    randomized_response,
)


class TestDistances:
    def test_identical_samples_near_zero(self, rng):
        x = rng.normal(size=2000)
        stat, p = ks_statistic(x[:1000], x[1000:])
        assert stat < 0.1 and p > 0.01
        assert population_stability_index(x[:1000], x[1000:]) < 0.1
        assert jensen_shannon_divergence(x[:1000], x[1000:]) < 0.1

    def test_shifted_samples_large_distance(self, rng):
        a = rng.normal(size=1000)
        b = rng.normal(loc=3.0, size=1000)
        assert ks_statistic(a, b)[0] > 0.5
        assert population_stability_index(a, b) > 1.0
        assert jensen_shannon_divergence(a, b) > 0.3

    def test_mmd_detects_multivariate_shift(self, rng):
        a = rng.normal(size=(300, 5))
        b = rng.normal(size=(300, 5))
        c = rng.normal(loc=1.5, size=(300, 5))
        assert mmd_rbf(a, c, seed=0) > mmd_rbf(a, b, seed=0)

    def test_empty_inputs(self):
        stat, p = ks_statistic(np.array([]), np.array([1.0]))
        assert stat == 0.0 and p == 1.0


class TestStreamingDetectors:
    @pytest.mark.parametrize("detector_cls", [KSDetector, PSIDetector, JSDetector, MMDDetector])
    def test_detects_covariate_drift(self, detector_cls):
        ds = make_gaussian_blobs(2000, 8, 3, seed=0)
        detector = detector_cls(ds.x[:500])
        stream = DriftingStream(ds, batch_size=128, specs=[DriftSpec(start=10, magnitude=2.5)], seed=1)
        for x, _, _ in stream.batches(20):
            detector.check(x)
        assert detector.detection_delay(10) is not None
        assert detector.false_positive_rate(10) <= 0.2

    def test_no_drift_no_alarm(self):
        ds = make_gaussian_blobs(2000, 8, 3, seed=0)
        detector = KSDetector(ds.x[:500])
        stream = DriftingStream(ds, batch_size=128, seed=2)
        for x, _, _ in stream.batches(15):
            detector.check(x)
        assert detector.false_positive_rate() <= 0.2

    def test_prediction_distribution_monitor(self, rng):
        ref = rng.integers(0, 4, size=1000)
        monitor = PredictionDistributionMonitor(ref, num_classes=4)
        same = monitor.check(rng.integers(0, 4, size=200))
        skew = monitor.check(np.zeros(200, dtype=int))
        assert not same.drifted and skew.drifted

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            KSDetector(np.array([]))


class TestSketches:
    def test_running_moments_match_numpy(self, rng):
        values = rng.normal(3.0, 2.0, size=5000)
        m = RunningMoments()
        m.update_batch(values)
        assert m.mean == pytest.approx(values.mean())
        assert m.variance == pytest.approx(values.var(), rel=1e-6)

    def test_running_moments_merge_equals_bulk(self, rng):
        values = rng.normal(size=2000)
        a, b, c = RunningMoments(), RunningMoments(), RunningMoments()
        a.update_batch(values[:700])
        b.update_batch(values[700:])
        c.update_batch(values)
        a.merge(b)
        assert a.mean == pytest.approx(c.mean)
        assert a.variance == pytest.approx(c.variance, rel=1e-9)

    def test_reservoir_capacity_and_coverage(self, rng):
        r = ReservoirSample(capacity=100, seed=0)
        r.update(np.arange(10000))
        assert len(r) == 100 and r.seen == 10000
        assert r.values().max() > 5000  # late items do get sampled

    def test_count_min_upper_bound(self):
        sketch = CountMinSketch(width=128, depth=4, seed=0)
        for i in range(50):
            sketch.add(f"item-{i % 5}")
        for i in range(5):
            assert sketch.estimate(f"item-{i}") >= 10

    def test_count_min_merge(self):
        a = CountMinSketch(width=64, depth=3, seed=1)
        b = CountMinSketch(width=64, depth=3, seed=1)
        a.add("x", 3)
        b.add("x", 4)
        a.merge(b)
        assert a.estimate("x") >= 7
        with pytest.raises(ValueError):
            a.merge(CountMinSketch(width=32, depth=3, seed=1))

    def test_streaming_histogram_density_and_merge(self, rng):
        h1 = StreamingHistogram(-3, 3, bins=16)
        h2 = StreamingHistogram(-3, 3, bins=16)
        h1.update(rng.normal(size=1000))
        h2.update(rng.normal(size=1000))
        h1.merge(h2)
        assert h1.total == 2000
        assert h1.density().sum() == pytest.approx(1.0)

    def test_p2_quantile_accuracy(self, rng):
        values = rng.normal(size=20000)
        q = P2Quantile(0.95)
        q.update(values)
        assert q.value == pytest.approx(np.quantile(values, 0.95), abs=0.08)

    def test_p2_quantile_few_samples(self):
        q = P2Quantile(0.5)
        q.update([1.0, 2.0, 3.0])
        assert q.value == pytest.approx(2.0)


class TestTelemetry:
    def test_recorder_constant_payload(self):
        rec = TelemetryRecorder("dev-1", model_version="v1", num_classes=4)
        size_before = rec.estimated_payload_bytes()
        for i in range(500):
            rec.record(QueryRecord(latency_s=0.01, energy_j=1e-3, memory_bytes=1e4, predicted_class=i % 4))
        assert rec.estimated_payload_bytes() == size_before
        report = rec.build_report()
        assert report.n_queries == 500
        assert sum(report.prediction_histogram.values()) == 500

    def test_aggregator_summary_and_slow_devices(self):
        agg = TelemetryAggregator()
        fast = TelemetryRecorder("fast", "v1", 2)
        slow = TelemetryRecorder("slow", "v1", 2)
        fast.record_batch(np.full(100, 0.001), np.zeros(100), np.zeros(100), np.zeros(100, dtype=int))
        slow.record_batch(np.full(100, 0.5), np.zeros(100), np.zeros(100), np.ones(100, dtype=int))
        agg.ingest(fast.build_report())
        agg.ingest(slow.build_report())
        summary = agg.fleet_summary()
        assert summary["n_devices"] == 2 and summary["n_queries"] == 200
        assert agg.slow_devices(0.1) == ["slow"]
        assert agg.prediction_distribution() == {0: 100, 1: 100}


class TestPrivacy:
    def test_randomized_response_flip_rate(self, rng):
        bits = rng.random(20000) < 0.5
        noisy = randomized_response(bits, epsilon=1.0, seed=0)
        flip_rate = np.mean(noisy != bits)
        expected = 1.0 / (np.exp(1.0) + 1.0)
        assert flip_rate == pytest.approx(expected, abs=0.02)

    def test_histogram_debiasing_recovers_distribution(self, rng):
        labels = rng.choice(4, size=20000, p=[0.5, 0.3, 0.15, 0.05])
        noisy = privatize_histogram(labels, 4, epsilon=1.5, seed=0)
        est = debias_histogram(noisy, 1.5)
        true = np.bincount(labels, minlength=4)
        np.testing.assert_allclose(est / est.sum(), true / true.sum(), atol=0.05)

    def test_epsilon_from_flip_probability(self):
        assert epsilon_for_flip_probability(0.25) == pytest.approx(np.log(3.0))
        with pytest.raises(ValueError):
            epsilon_for_flip_probability(0.6)

    def test_laplace_mechanism_noise_scale(self, rng):
        noisy = laplace_mechanism(np.zeros(20000), sensitivity=1.0, epsilon=2.0, seed=0)
        assert np.mean(np.abs(noisy)) == pytest.approx(0.5, abs=0.05)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            randomized_response(np.array([True]), epsilon=0.0)


class TestMonitorAndAlerts:
    def test_edge_monitor_detects_drift_and_records_telemetry(self):
        ds = make_gaussian_blobs(2000, 8, 3, seed=0)
        monitor = EdgeMonitor("dev-1", ds.x[:400], reference_predictions=ds.y[:400], num_classes=3, detectors=("ks",))
        stream = DriftingStream(ds, batch_size=96, specs=[DriftSpec(start=8, magnitude=2.5)], seed=3)
        for x, y, _ in stream.batches(16):
            monitor.observe_window(x, predictions=y, latencies=np.full(96, 0.01))
        assert monitor.any_drift()
        report = monitor.build_report()
        assert report.n_queries == 16 * 96

    def test_edge_monitor_unknown_detector(self):
        with pytest.raises(KeyError):
            EdgeMonitor("d", np.zeros((10, 2)), detectors=("magic",))

    def test_alert_engine_rules(self):
        engine = AlertEngine.default_rules(latency_budget_s=0.05, drift_rate_threshold=0.3)
        ok = engine.evaluate({"latency_mean": 0.01, "drift_fraction": 0.0})
        assert ok == []
        raised = engine.evaluate({"latency_mean": 0.2, "drift_fraction": 0.5})
        assert {a.rule for a in raised} == {"latency_budget", "drift_rate"}
        assert len(engine.alerts) == 2

    def test_custom_alert_rule(self):
        rule = AlertRule("battery", lambda m: m.get("soc", 1.0) < 0.1, severity="critical")
        assert rule.evaluate({"soc": 0.05}) is not None
        assert rule.evaluate({"soc": 0.9}) is None


class TestBatchedSketches:
    """Bulk ingestion paths: CountMinSketch.add_batch, ReservoirSample.offer_batch,
    RunningMoments.update delegating arrays to the O(1) merge."""

    def test_count_min_add_batch_equals_sequential(self, rng):
        items = rng.integers(0, 12, size=4000)
        batch = CountMinSketch(width=64, depth=4, seed=2)
        seq = CountMinSketch(width=64, depth=4, seed=2)
        batch.add_batch(items)
        for item in items:
            seq.add(int(item))
        np.testing.assert_array_equal(batch.table, seq.table)
        assert batch.total == seq.total
        for cls in range(12):
            assert batch.estimate(cls) == seq.estimate(cls)
            assert batch.estimate(cls) >= int(np.count_nonzero(items == cls))

    def test_count_min_add_batch_with_counts(self, rng):
        items = rng.integers(0, 8, size=1000)
        values, counts = np.unique(items, return_counts=True)
        a = CountMinSketch(seed=5)
        b = CountMinSketch(seed=5)
        a.add_batch(items)
        b.add_batch(values, counts)
        np.testing.assert_array_equal(a.table, b.table)
        with pytest.raises(ValueError):
            a.add_batch(values, counts[:-1])

    def test_count_min_add_batch_rejects_non_integer(self):
        with pytest.raises(TypeError):
            CountMinSketch().add_batch(np.array([0.5, 1.5]))
        CountMinSketch().add_batch(np.array([], dtype=int))  # empty is a no-op

    def test_count_min_merge_rejects_any_parameter_mismatch(self):
        base = CountMinSketch(width=64, depth=4, seed=0)
        for other in (
            CountMinSketch(width=32, depth=4, seed=0),
            CountMinSketch(width=64, depth=2, seed=0),
            CountMinSketch(width=64, depth=4, seed=1),
        ):
            with pytest.raises(ValueError):
                base.merge(other)
        # exact-parameter merge still works and sums totals
        twin = CountMinSketch(width=64, depth=4, seed=0)
        twin.add(7, 3)
        base.add(7, 2)
        assert base.merge(twin).estimate(7) >= 5

    def test_reservoir_offer_batch_bookkeeping(self, rng):
        r = ReservoirSample(capacity=64, seed=0)
        for chunk in np.array_split(np.arange(30000, dtype=float), 5):
            r.offer_batch(chunk)
        assert len(r) == 64 and r.seen == 30000
        assert r.values().max() > 15000  # late items do get sampled

    def test_reservoir_offer_batch_small_batches_fill_first(self):
        r = ReservoirSample(capacity=10, seed=0)
        r.offer_batch(np.arange(4, dtype=float))
        assert len(r) == 4 and r.seen == 4
        r.offer_batch(np.arange(3, dtype=float))
        assert len(r) == 7
        np.testing.assert_array_equal(r.values(), [0, 1, 2, 3, 0, 1, 2])

    def test_reservoir_offer_batch_roughly_uniform(self):
        """Algorithm L inclusion probabilities: sampled-index mean ~ stream mean."""
        means = [
            ReservoirSample(capacity=64, seed=s) for s in range(40)
        ]
        for s, r in enumerate(means):
            r.offer_batch(np.arange(20000, dtype=float))
        grand = np.mean([r.values().mean() for r in means])
        assert abs(grand - 10000) < 1500

    def test_reservoir_mixing_scalar_and_batch(self):
        r = ReservoirSample(capacity=16, seed=3)
        r.update(np.arange(10, dtype=float))
        r.offer_batch(np.arange(200, dtype=float))
        r.update([5.0])
        r.offer_batch(np.arange(50, dtype=float))
        assert r.seen == 261 and len(r) == 16

    def test_reservoir_batch_after_scalar_fill_stays_uniform(self):
        """Regression: resuming Algorithm L mid-stream must not let the
        batch evict the earlier (scalar-fed) stream — W re-initializes from
        its position-t distribution, not the fill-time one."""
        fractions = []
        for s in range(60):
            r = ReservoirSample(capacity=32, seed=s)
            r.update(np.arange(5000, dtype=float))
            r.offer_batch(np.arange(5000, 10000, dtype=float))
            fractions.append(np.mean(r.values() >= 5000))
        assert 0.4 < np.mean(fractions) < 0.6

    def test_running_moments_array_update_delegates_to_merge(self, rng):
        values = rng.normal(2.0, 3.0, size=2500)
        via_update = RunningMoments()
        via_batch = RunningMoments()
        via_update.update(values)
        via_batch.update_batch(values)
        assert via_update.count == via_batch.count == 2500
        assert via_update.mean == via_batch.mean
        assert via_update.variance == via_batch.variance
        # scalar updates still use the Welford recurrence
        via_update.update(1.25)
        assert via_update.count == 2501


class TestDetectionMetricEdges:
    """detection_delay / false_positive_rate on empty and boundary histories."""

    def test_empty_history(self, rng):
        detector = KSDetector(rng.normal(size=(50, 2)))
        assert detector.detection_delay(0) is None
        assert detector.false_positive_rate() == 0.0
        assert detector.false_positive_rate(0) == 0.0

    def test_drift_at_index_zero(self, rng):
        detector = KSDetector(rng.normal(size=(200, 2)), threshold=0.2)
        detector.check(rng.normal(loc=5.0, size=(100, 2)))  # drifts immediately
        assert detector.detection_delay(0) == 0
        assert detector.false_positive_rate(0) == 0.0  # no pre-drift windows
        assert detector.false_positive_rate() == 1.0

    def test_missed_drift_returns_none(self, rng):
        detector = KSDetector(rng.normal(size=(200, 2)), threshold=0.99)
        for _ in range(5):
            detector.check(rng.normal(size=(100, 2)))
        assert detector.detection_delay(2) is None

    def test_delay_counts_from_onset(self, rng):
        detector = KSDetector(rng.normal(size=(300, 2)), threshold=0.25)
        for i in range(6):
            loc = 4.0 if i >= 4 else 0.0
            detector.check(rng.normal(loc=loc, size=(80, 2)))
        assert detector.detection_delay(2) == 2  # onset index 2, fires at 4
        assert detector.false_positive_rate(4) == 0.0


class TestAlertRuleEdges:
    def test_default_rules_cover_all_three_signals(self):
        engine = AlertEngine.default_rules(latency_budget_s=0.1, drift_rate_threshold=0.2)
        assert {r.name for r in engine.rules} == {"latency_budget", "drift_rate", "battery_failures"}
        raised = engine.evaluate(
            {"latency_mean": 0.5, "drift_fraction": 0.9, "failed_inference_fraction": 0.5}
        )
        assert {a.rule for a in raised} == {"latency_budget", "drift_rate", "battery_failures"}
        severities = {a.rule: a.severity for a in raised}
        assert severities["drift_rate"] == "critical"
        assert severities["latency_budget"] == "warning"

    def test_default_rules_ignore_missing_metrics(self):
        engine = AlertEngine.default_rules()
        assert engine.evaluate({}) == []  # absent metrics default to healthy
        assert engine.alerts == []

    def test_evaluate_attaches_context_and_message(self):
        rule = AlertRule("soc_low", lambda m: m.get("soc", 1.0) < 0.2, message="battery low")
        alert = rule.evaluate({"soc": 0.1, "n": 3.0})
        assert alert is not None
        assert alert.message == "battery low"
        assert dict(alert.context) == {"soc": 0.1, "n": 3.0}

    def test_evaluate_default_message(self):
        rule = AlertRule("anything", lambda m: True)
        assert rule.evaluate({}).message == "rule anything fired"

    def test_add_rule_and_history_accumulates(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("always", lambda m: True))
        engine.evaluate({})
        engine.evaluate({})
        assert len(engine.alerts) == 2


class TestTelemetrySketchWiring:
    """TelemetryRecorder's bulk path feeds the batched sketches."""

    def test_latency_reservoir_fed_by_record_batch(self, rng):
        rec = TelemetryRecorder("dev-1", num_classes=4)
        for _ in range(20):
            rec.record_batch(rng.uniform(0.001, 0.02, 500), np.zeros(500), np.zeros(500))
        sample = rec.latency_sample()
        assert len(sample) == TelemetryRecorder.LATENCY_SAMPLE_CAPACITY
        assert rec._latency_sample.seen == 10000
        assert 0.001 <= sample.min() and sample.max() <= 0.02
        # payload accounts for the sample and stays constant + small
        assert rec.estimated_payload_bytes() < 1024
        before = rec.estimated_payload_bytes()
        rec.record_batch(rng.uniform(0.001, 0.02, 500), np.zeros(500), np.zeros(500))
        assert rec.estimated_payload_bytes() == before

    def test_unknown_class_space_uses_count_min_sketch(self, rng):
        rec = TelemetryRecorder("dev-2", num_classes=0)
        preds = rng.integers(0, 6, 2000)
        rec.record_batch(np.full(2000, 0.01), np.zeros(2000), np.zeros(2000), preds)
        report = rec.build_report()
        assert set(report.prediction_histogram) == set(np.unique(preds))
        for cls, est in report.prediction_histogram.items():
            assert est >= int(np.count_nonzero(preds == cls))  # upper-biased
        # scalar path agrees with the sketch
        rec.record(QueryRecord(0.01, 0.0, 0.0, predicted_class=3))
        assert rec.build_report().prediction_histogram[3] >= 1

    def test_known_class_space_histogram_still_exact(self, rng):
        rec = TelemetryRecorder("dev-3", num_classes=5)
        preds = rng.integers(0, 5, 1000)
        rec.record_batch(np.full(1000, 0.01), np.zeros(1000), np.zeros(1000), preds)
        assert rec.build_report().prediction_histogram == {
            int(c): int(n) for c, n in zip(*np.unique(preds, return_counts=True))
        }

    def test_reports_deterministic_per_device(self, rng):
        """Same device id + same traffic => byte-equal reports (seeded sketches)."""
        lat = rng.uniform(0.001, 0.02, 3000)
        a, b = TelemetryRecorder("dev-9"), TelemetryRecorder("dev-9")
        a.record_batch(lat, np.zeros(3000), np.zeros(3000))
        b.record_batch(lat, np.zeros(3000), np.zeros(3000))
        assert a.build_report().as_dict() == b.build_report().as_dict()
        np.testing.assert_array_equal(a.latency_sample(), b.latency_sample())


class TestSketchReviewRegressions:
    def test_count_min_huge_int_uses_object_path(self):
        sketch = CountMinSketch(seed=0)
        sketch.add(2 ** 70)  # outside uint64: must not crash
        assert sketch.estimate(2 ** 70) == 1

    def test_count_min_bool_distinct_from_int(self):
        sketch = CountMinSketch(width=256, depth=4, seed=0)
        sketch.add(True, 5)
        assert sketch.estimate(True) == 5
        # bools hash via repr (pre-fast-path behavior), not as the int 1
        assert not np.array_equal(sketch._indices(True), sketch._indices(1))

    def test_observed_class_cap_holds_within_one_batch(self):
        rec = TelemetryRecorder("dev-cap", num_classes=0)
        rec.record_batch(
            np.full(5000, 0.01), np.zeros(5000), np.zeros(5000), np.arange(5000)
        )
        assert len(rec._observed_classes) == TelemetryRecorder._MAX_OBSERVED_CLASSES
        assert len(rec.build_report().prediction_histogram) == TelemetryRecorder._MAX_OBSERVED_CLASSES
