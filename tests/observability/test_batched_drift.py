"""Differential suite: vectorized column detectors vs the per-column oracle.

The batched scoring path (``ks_statistic_columns`` /
``population_stability_index_columns`` / ``jensen_shannon_divergence_columns``)
must be *bit-identical* to the per-column loop it replaces — one
``scipy.stats.ks_2samp`` / two ``np.histogram`` calls per feature column —
on any window the oracle accepts: golden cases (constant columns,
single-sample windows, heavy ties, shared values) plus hypothesis-generated
random 2-D windows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import (
    JSDetector,
    KSDetector,
    PredictionDistributionMonitor,
    PSIDetector,
    jensen_shannon_divergence,
    jensen_shannon_divergence_columns,
    ks_statistic,
    ks_statistic_columns,
    population_stability_index,
    population_stability_index_columns,
)

DETECTORS = [KSDetector, PSIDetector, JSDetector]


def oracle_columns(ref: np.ndarray, live: np.ndarray, fn) -> np.ndarray:
    return np.array([fn(ref[:, j], live[:, j]) for j in range(ref.shape[1])])


def assert_columns_identical(ref: np.ndarray, live: np.ndarray) -> None:
    """All three column functions must equal their per-column oracles exactly."""
    ref_sorted = np.sort(ref, axis=0)
    np.testing.assert_array_equal(
        ks_statistic_columns(ref_sorted, live),
        oracle_columns(ref, live, lambda r, l: ks_statistic(r, l)[0]),
    )
    np.testing.assert_array_equal(
        population_stability_index_columns(ref_sorted, live),
        oracle_columns(ref, live, population_stability_index),
    )
    np.testing.assert_array_equal(
        jensen_shannon_divergence_columns(ref_sorted, live),
        oracle_columns(ref, live, jensen_shannon_divergence),
    )


class TestGoldenCases:
    def test_random_shifted_windows(self, rng):
        ref = rng.normal(size=(200, 6))
        for shift in (0.0, 0.5, 3.0):
            assert_columns_identical(ref, rng.normal(loc=shift, size=(48, 6)))

    def test_constant_columns(self, rng):
        ref = rng.normal(size=(100, 4))
        ref[:, 0] = 1.5
        live = rng.normal(size=(30, 4))
        live[:, 0] = 1.5  # constant on both sides: degenerate histogram range
        live[:, 1] = -2.0  # constant live against varying reference
        assert_columns_identical(ref, live)

    def test_single_sample_window(self, rng):
        ref = rng.normal(size=(150, 5))
        assert_columns_identical(ref, rng.normal(size=(1, 5)))

    def test_heavy_ties(self, rng):
        ref = np.round(rng.normal(size=(120, 3)))
        live = np.round(rng.normal(loc=1.0, size=(40, 3)))
        assert_columns_identical(ref, live)

    def test_live_values_shared_with_reference(self, rng):
        ref = rng.normal(size=(80, 4))
        live = ref[rng.integers(0, 80, size=25)]  # every live point ties a ref point
        assert_columns_identical(ref, live)

    def test_tiny_reference(self, rng):
        assert_columns_identical(rng.normal(size=(2, 2)), rng.normal(size=(3, 2)))

    def test_huge_magnitude_constant_falls_back(self):
        """lo + 1e-9 == lo at 1e18: the degenerate-edge fallback must kick in."""
        ref = np.full((50, 2), 1e18)
        live = np.full((10, 2), 1e18)
        assert_columns_identical(ref, live)

    def test_empty_live_window_scores_zero_ks(self, rng):
        ref_sorted = np.sort(rng.normal(size=(50, 3)), axis=0)
        np.testing.assert_array_equal(ks_statistic_columns(ref_sorted, np.empty((0, 3))), np.zeros(3))

    def test_fleet_stacking_equals_per_device(self, rng):
        """g windows stacked side-by-side score exactly as g separate sweeps."""
        ref = rng.normal(size=(100, 4))
        ref_sorted = np.sort(ref, axis=0)
        wins = [rng.normal(loc=0.3 * i, size=(20, 4)) for i in range(7)]
        stack = np.hstack(wins)
        for fn in (ks_statistic_columns, population_stability_index_columns, jensen_shannon_divergence_columns):
            got = fn(ref_sorted, stack).reshape(7, 4)
            want = np.stack([fn(ref_sorted, w) for w in wins])
            np.testing.assert_array_equal(got, want)

    def test_column_count_mismatch_rejected(self, rng):
        ref_sorted = np.sort(rng.normal(size=(50, 4)), axis=0)
        with pytest.raises(ValueError):
            ks_statistic_columns(ref_sorted, rng.normal(size=(10, 6)))


class TestDetectorEquivalence:
    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_batched_detector_equals_oracle_detector(self, detector_cls, rng):
        ref = rng.normal(size=(150, 8))
        batched = detector_cls(ref)
        oracle = detector_cls(ref, batched=False)
        for i in range(6):
            live = rng.normal(loc=0.4 * i, scale=1.0 + 0.2 * i, size=(32, 8))
            rb, ro = batched.check(live), oracle.check(live)
            assert rb.statistic == ro.statistic
            assert rb.drifted == ro.drifted
        assert [r.statistic for r in batched.history] == [r.statistic for r in oracle.history]

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_mismatched_width_ravels_like_oracle(self, detector_cls, rng):
        ref = rng.normal(size=(60, 5))
        batched = detector_cls(ref)
        oracle = detector_cls(ref, batched=False)
        live = rng.normal(size=(24, 3))  # width mismatch: both sides ravel
        assert batched.check(live).statistic == oracle.check(live).statistic

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_one_dimensional_reference(self, detector_cls, rng):
        ref = rng.normal(size=120)
        batched = detector_cls(ref)
        oracle = detector_cls(ref, batched=False)
        live = rng.normal(loc=0.8, size=40)
        assert batched.check(live).statistic == oracle.check(live).statistic

    @pytest.mark.parametrize("detector_cls", DETECTORS)
    def test_three_dimensional_window_flattens(self, detector_cls, rng):
        ref = rng.normal(size=(60, 12))
        batched = detector_cls(ref)
        oracle = detector_cls(ref, batched=False)
        live = rng.normal(size=(16, 3, 4))  # image window, flattens to 12 cols
        assert batched.check(live).statistic == oracle.check(live).statistic

    def test_reference_sorted_cached_at_construction(self, rng):
        det = KSDetector(rng.normal(size=(50, 3)))
        assert det._ref_sorted is not None
        assert np.all(np.diff(det.reference_sorted, axis=0) >= 0)


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    n_ref=st.integers(min_value=2, max_value=60),
    n_live=st.integers(min_value=1, max_value=40),
    d=st.integers(min_value=1, max_value=5),
)
def test_property_batched_matches_oracle(data, n_ref, n_live, d):
    """Random 2-D windows (bounded floats, duplicates likely) score identically."""
    elements = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32)
    ref = np.array(
        data.draw(st.lists(st.lists(elements, min_size=d, max_size=d), min_size=n_ref, max_size=n_ref)),
        dtype=np.float64,
    )
    live = np.array(
        data.draw(st.lists(st.lists(elements, min_size=d, max_size=d), min_size=n_live, max_size=n_live)),
        dtype=np.float64,
    )
    assert_columns_identical(ref, live)


class TestPredictionMonitorGuard:
    def test_empty_window_not_drifted(self, rng):
        monitor = PredictionDistributionMonitor(rng.integers(0, 4, 500), num_classes=4, threshold=0.05)
        result = monitor.check(np.array([], dtype=int))
        assert result.statistic == 0.0
        assert not result.drifted
        assert len(monitor.history) == 1  # still recorded, windows stay countable

    def test_skewed_window_still_drifts_after_empty(self, rng):
        monitor = PredictionDistributionMonitor(rng.integers(0, 4, 500), num_classes=4)
        monitor.check(np.array([], dtype=int))
        assert monitor.check(np.zeros(200, dtype=int)).drifted


class TestNonFiniteIsolation:
    """A degenerate (NaN/inf) column must not corrupt its neighbours."""

    def test_nan_column_leaves_neighbours_bit_identical(self, rng):
        ref = rng.normal(size=(100, 3))
        live = rng.normal(size=(20, 3))
        live[3, 1] = np.nan
        ref_sorted = np.sort(ref, axis=0)
        for fn, oracle in (
            (population_stability_index_columns, population_stability_index),
            (jensen_shannon_divergence_columns, jensen_shannon_divergence),
        ):
            got = fn(ref_sorted, live)
            for col in (0, 2):  # clean columns score exactly as the oracle
                assert got[col] == oracle(ref[:, col], live[:, col])

    def test_nan_in_first_column_does_not_crash_sweep(self, rng):
        ref = rng.normal(size=(50, 2))
        live = rng.normal(size=(10, 2))
        live[0, 0] = np.nan
        got = population_stability_index_columns(np.sort(ref, axis=0), live)
        assert got[1] == population_stability_index(ref[:, 1], live[:, 1])

    def test_inf_column_isolated(self, rng):
        ref = rng.normal(size=(60, 2))
        live = rng.normal(size=(15, 2))
        live[4, 0] = np.inf
        got = jensen_shannon_divergence_columns(np.sort(ref, axis=0), live)
        assert got[1] == jensen_shannon_divergence(ref[:, 1], live[:, 1])
