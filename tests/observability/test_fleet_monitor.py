"""FleetMonitor: one-sweep fleet drift monitoring vs per-device observation.

The sweep must leave every per-device EdgeMonitor in *exactly* the state a
per-device ``observe_window`` loop would: identical DriftResult statistics
and histories, identical drift events (including window indices) and
byte-equal telemetry payloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability import EdgeMonitor, FleetMonitor


def make_monitors(ref, ref_preds, n_devices=12, detectors=("ks", "psi", "js"), **kwargs):
    return {
        f"dev-{i}": EdgeMonitor(
            f"dev-{i}",
            ref,
            reference_predictions=ref_preds,
            num_classes=5,
            detectors=detectors,
            **kwargs,
        )
        for i in range(n_devices)
    }


def make_traffic(rng, device_ids, n_windows=3, widths=(24,), n_features=8, drift_from=2):
    """Per-window traffic dicts; devices cycle through the window widths."""
    traffic = []
    for w in range(n_windows):
        shift = 2.0 if w >= drift_from else 0.0
        windows, preds, lats = {}, {}, {}
        for i, device_id in enumerate(device_ids):
            n = widths[i % len(widths)]
            windows[device_id] = rng.normal(loc=shift * (i % 2), size=(n, n_features))
            preds[device_id] = rng.integers(0, 5, n)
            lats[device_id] = rng.uniform(0.001, 0.01, n)
        traffic.append((windows, preds, lats))
    return traffic


def _nan_safe(obj):
    """Replace NaN floats (p95 of an empty recorder) so == compares sanely."""
    if isinstance(obj, dict):
        return {k: _nan_safe(v) for k, v in obj.items()}
    if isinstance(obj, float) and np.isnan(obj):
        return "nan"
    return obj


def assert_monitor_states_identical(fleet_monitors, solo_monitors):
    for device_id, a in fleet_monitors.items():
        b = solo_monitors[device_id]
        assert a.drift_events == b.drift_events
        for name in a.detectors:
            ha = [(r.statistic, r.drifted) for r in a.detectors[name].history]
            hb = [(r.statistic, r.drifted) for r in b.detectors[name].history]
            assert ha == hb, (device_id, name)
        if a.prediction_monitor is not None:
            ha = [(r.statistic, r.drifted) for r in a.prediction_monitor.history]
            hb = [(r.statistic, r.drifted) for r in b.prediction_monitor.history]
            assert ha == hb, device_id
        assert _nan_safe(a.build_report().as_dict()) == _nan_safe(b.build_report().as_dict())


class TestFleetSweepEquivalence:
    def test_homogeneous_fleet(self, rng):
        ref = rng.normal(size=(150, 8))
        ref_preds = rng.integers(0, 5, 150)
        fleet_side = make_monitors(ref, ref_preds)
        solo_side = make_monitors(ref, ref_preds)
        fm = FleetMonitor(fleet_side)
        for windows, preds, lats in make_traffic(rng, list(fleet_side)):
            results = fm.observe_fleet(windows, predictions=preds, latencies=lats)
            for device_id, x in windows.items():
                solo = solo_side[device_id].observe_window(
                    x, predictions=preds[device_id], latencies=lats[device_id]
                )
                assert {k: (v.statistic, v.drifted) for k, v in results[device_id].items()} == {
                    k: (v.statistic, v.drifted) for k, v in solo.items()
                }
        assert_monitor_states_identical(fleet_side, solo_side)

    def test_heterogeneous_window_lengths_bucket_separately(self, rng):
        ref = rng.normal(size=(120, 6))
        ref_preds = rng.integers(0, 5, 120)
        fleet_side = make_monitors(ref, ref_preds)
        solo_side = make_monitors(ref, ref_preds)
        fm = FleetMonitor(fleet_side)
        for windows, preds, lats in make_traffic(
            rng, list(fleet_side), widths=(16, 31, 7), n_features=6
        ):
            fm.observe_fleet(windows, predictions=preds, latencies=lats)
            for device_id, x in windows.items():
                solo_side[device_id].observe_window(
                    x, predictions=preds[device_id], latencies=lats[device_id]
                )
        assert_monitor_states_identical(fleet_side, solo_side)

    def test_mmd_detector_runs_per_device(self, rng):
        ref = rng.normal(size=(80, 4))
        fleet_side = make_monitors(ref, None, n_devices=4, detectors=("ks", "mmd"))
        solo_side = make_monitors(ref, None, n_devices=4, detectors=("ks", "mmd"))
        fm = FleetMonitor(fleet_side)
        windows = {d: rng.normal(size=(20, 4)) for d in fleet_side}
        fm.observe_fleet(windows)
        for d, x in windows.items():
            solo_side[d].observe_window(x)
        assert_monitor_states_identical(fleet_side, solo_side)

    def test_oracle_mode_monitors_still_sweep_correctly(self, rng):
        """batched=False monitors fall back per-device inside the sweep."""
        ref = rng.normal(size=(60, 5))
        fleet_side = make_monitors(ref, None, n_devices=3, detectors=("ks",), batched=False)
        solo_side = make_monitors(ref, None, n_devices=3, detectors=("ks",), batched=False)
        fm = FleetMonitor(fleet_side)
        windows = {d: rng.normal(loc=1.0, size=(15, 5)) for d in fleet_side}
        fm.observe_fleet(windows)
        for d, x in windows.items():
            solo_side[d].observe_window(x)
        assert_monitor_states_identical(fleet_side, solo_side)

    def test_different_references_do_not_stack(self, rng):
        """Monitors with different references must bucket apart (and stay correct)."""
        ref_a = rng.normal(size=(70, 4))
        ref_b = rng.normal(loc=5.0, size=(70, 4))
        fleet_side = {
            "dev-a": EdgeMonitor("dev-a", ref_a, detectors=("ks",)),
            "dev-b": EdgeMonitor("dev-b", ref_b, detectors=("ks",)),
        }
        solo_side = {
            "dev-a": EdgeMonitor("dev-a", ref_a, detectors=("ks",)),
            "dev-b": EdgeMonitor("dev-b", ref_b, detectors=("ks",)),
        }
        fm = FleetMonitor(fleet_side)
        x = rng.normal(size=(25, 4))
        fm.observe_fleet({"dev-a": x, "dev-b": x})
        solo_side["dev-a"].observe_window(x)
        solo_side["dev-b"].observe_window(x)
        assert_monitor_states_identical(fleet_side, solo_side)
        # same live window, different references: statistics must differ
        sa = fleet_side["dev-a"].detectors["ks"].history[0].statistic
        sb = fleet_side["dev-b"].detectors["ks"].history[0].statistic
        assert sa != sb

    def test_empty_windows_skipped(self, rng):
        ref = rng.normal(size=(40, 3))
        monitors = make_monitors(ref, None, n_devices=2, detectors=("ks",))
        fm = FleetMonitor(monitors)
        results = fm.observe_fleet({"dev-0": np.empty((0, 3)), "dev-1": rng.normal(size=(10, 3))})
        assert "dev-0" not in results and "dev-1" in results
        assert len(monitors["dev-0"].detectors["ks"].history) == 0

    def test_missing_predictions_for_some_devices(self, rng):
        ref = rng.normal(size=(60, 4))
        ref_preds = rng.integers(0, 5, 60)
        fleet_side = make_monitors(ref, ref_preds, n_devices=3, detectors=("ks",))
        solo_side = make_monitors(ref, ref_preds, n_devices=3, detectors=("ks",))
        fm = FleetMonitor(fleet_side)
        windows = {d: rng.normal(size=(12, 4)) for d in fleet_side}
        preds = {"dev-0": rng.integers(0, 5, 12)}  # only one device reports preds
        fm.observe_fleet(windows, predictions=preds)
        for d, x in windows.items():
            solo_side[d].observe_window(x, predictions=preds.get(d))
        assert_monitor_states_identical(fleet_side, solo_side)


class TestWindowCounterFix:
    def test_window_index_without_detectors(self, rng):
        """Prediction-only monitors must record the true window index."""
        ref_preds = rng.integers(0, 3, 300)
        monitor = EdgeMonitor("dev-0", rng.normal(size=(50, 4)), reference_predictions=ref_preds,
                              num_classes=3, detectors=())
        monitor.observe_window(rng.normal(size=(20, 4)), predictions=rng.integers(0, 3, 20))
        monitor.observe_window(rng.normal(size=(20, 4)), predictions=rng.integers(0, 3, 20))
        monitor.observe_window(rng.normal(size=(20, 4)), predictions=np.zeros(20, dtype=int))
        assert monitor.any_drift()
        assert monitor.drift_events[-1]["window"] == 2  # was always 0 before the fix
        assert monitor.drift_events[-1]["detectors"] == ["prediction"]

    def test_window_index_matches_detector_history(self, rng):
        monitor = EdgeMonitor("dev-0", rng.normal(size=(50, 4)), detectors=("ks",))
        for i in range(3):
            monitor.observe_window(rng.normal(loc=3.0 * (i == 2), size=(25, 4)))
        assert monitor.drift_events[-1]["window"] == len(monitor.detectors["ks"].history) - 1
