"""Tests for quota grants, the tamper-evident usage ledger and reconciliation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.billing import (
    BillingBackend,
    PricingPlan,
    QuotaExceededError,
    QuotaGrant,
    UsageLedger,
)


@pytest.fixture()
def backend_and_ledger():
    backend = BillingBackend()
    backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
    key = backend.enroll_device("dev-1")
    ledger = UsageLedger("dev-1", key)
    grant = backend.sell_package("dev-1", "vision", 50)
    ledger.add_grant(grant, backend_key=backend.signing_key())
    return backend, ledger


class TestPricingAndGrants:
    def test_package_price_matches_example(self):
        plan = PricingPlan("vision", price_per_query=0.0015)
        assert plan.package_price(1000) == pytest.approx(1.5)

    def test_grant_signature_verifies(self):
        backend = BillingBackend()
        backend.register_plan(PricingPlan("vision"))
        backend.enroll_device("dev-1")
        grant = backend.sell_package("dev-1", "vision", 10)
        assert grant.verify(backend.signing_key())
        forged = QuotaGrant(grant.grant_id, grant.device_id, grant.model_name, 10**6, grant.signature)
        assert not forged.verify(backend.signing_key())

    def test_selling_requires_enrollment_and_plan(self):
        backend = BillingBackend()
        backend.register_plan(PricingPlan("vision"))
        with pytest.raises(KeyError):
            backend.sell_package("ghost", "vision", 10)
        backend.enroll_device("dev-1")
        with pytest.raises(KeyError):
            backend.sell_package("dev-1", "unknown-model", 10)

    def test_grant_for_other_device_rejected(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        backend.enroll_device("dev-2")
        foreign = backend.sell_package("dev-2", "vision", 10)
        with pytest.raises(ValueError):
            ledger.add_grant(foreign)


class TestUsageLedger:
    def test_quota_enforced_offline(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(50):
            ledger.record_query("vision")
        with pytest.raises(QuotaExceededError):
            ledger.record_query("vision")
        assert ledger.used("vision") == 50
        assert ledger.remaining("vision") == 0

    def test_chain_verifies_when_untouched(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        assert ledger.verify_chain()

    def test_editing_an_entry_breaks_chain(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        entry = ledger.entries[5]
        ledger.entries[5] = type(entry)(
            index=entry.index,
            grant_id=entry.grant_id,
            model_name="other-model",
            timestamp=entry.timestamp,
            prev_mac=entry.prev_mac,
            mac=entry.mac,
        )
        assert not ledger.verify_chain()

    def test_deleting_an_entry_breaks_chain(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        del ledger.entries[3]
        assert not ledger.verify_chain()

    def test_wrong_key_fails_verification(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        ledger.record_query("vision")
        assert not ledger.verify_chain(key=b"wrong-key")

    def test_multiple_grants_consumed_in_order(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        second = backend.sell_package("dev-1", "vision", 10)
        ledger.add_grant(second, backend_key=backend.signing_key())
        for _ in range(55):
            ledger.record_query("vision")
        assert ledger.remaining("vision") == 5


class TestReconciliation:
    def test_honest_ledger_accepted_and_billed(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(30):
            ledger.record_query("vision")
        result = backend.reconcile(ledger.export())
        assert result.accepted
        assert result.billed_amount == pytest.approx(30 * 0.0015)
        report = backend.usage_report()
        assert report["total_synced_queries"] == 30 and report["n_rejected"] == 0

    def test_incremental_sync_only_bills_new_entries(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(10):
            ledger.record_query("vision")
        backend.reconcile(ledger.export())
        for _ in range(5):
            ledger.record_query("vision")
        second = backend.reconcile(ledger.export())
        assert second.n_new_entries == 5
        assert second.billed_amount == pytest.approx(5 * 0.0015)

    def test_tampered_mac_rejected(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(10):
            ledger.record_query("vision")
        export = ledger.export()
        export["entries"][4]["model_name"] = "free-model"
        result = backend.reconcile(export)
        assert not result.accepted and any("MAC" in i for i in result.issues)

    def test_rollback_detected(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        backend.reconcile(ledger.export())
        truncated = ledger.export()
        truncated["entries"] = truncated["entries"][:5]
        result = backend.reconcile(truncated)
        assert not result.accepted and any("rollback" in i for i in result.issues)

    def test_unenrolled_device_rejected(self):
        backend = BillingBackend()
        result = backend.reconcile({"device_id": "stranger", "entries": []})
        assert not result.accepted

    def test_foreign_grant_flagged(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        ledger.record_query("vision")
        export = ledger.export()
        export["entries"][0]["grant_id"] = "grant-999999"
        # Recompute a fresh, internally consistent chain with the forged grant
        # using the device key (simulating a malicious but key-holding device).
        forged = UsageLedger("dev-1", backend.device_keys["dev-1"])
        mac = forged._next_mac(0, "grant-999999", "vision", 1.0, UsageLedger.GENESIS)
        export["entries"] = [
            {"index": 0, "grant_id": "grant-999999", "model_name": "vision", "timestamp": 1.0, "prev_mac": UsageLedger.GENESIS, "mac": mac}
        ]
        result = backend.reconcile(export)
        assert not result.accepted and any("unknown or foreign grant" in i for i in result.issues)

    def test_overuse_flagged(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        # Rebuild a ledger that claims more queries than granted by writing
        # entries directly with the device key.
        key = backend.device_keys["dev-1"]
        grant_id = next(iter(ledger.grants))
        cheat = UsageLedger("dev-1", key)
        cheat.grants = dict(ledger.grants)
        cheat._used_per_grant = {grant_id: 0}
        entries = []
        prev = UsageLedger.GENESIS
        for i in range(60):  # grant only covers 50
            mac = cheat._next_mac(i, grant_id, "vision", float(i), prev)
            entries.append({"index": i, "grant_id": grant_id, "model_name": "vision", "timestamp": float(i), "prev_mac": prev, "mac": mac})
            prev = mac
        result = backend.reconcile({"device_id": "dev-1", "entries": entries, "grants": {}})
        assert not result.accepted and any("over-used" in i for i in result.issues)
