"""Tests for quota grants, the tamper-evident usage ledger and reconciliation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.billing import (
    BillingBackend,
    PricingPlan,
    QuotaExceededError,
    QuotaGrant,
    UsageLedger,
)


@pytest.fixture()
def backend_and_ledger():
    backend = BillingBackend()
    backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
    key = backend.enroll_device("dev-1")
    ledger = UsageLedger("dev-1", key)
    grant = backend.sell_package("dev-1", "vision", 50)
    ledger.add_grant(grant, backend_key=backend.signing_key())
    return backend, ledger


class TestPricingAndGrants:
    def test_package_price_matches_example(self):
        plan = PricingPlan("vision", price_per_query=0.0015)
        assert plan.package_price(1000) == pytest.approx(1.5)

    def test_grant_signature_verifies(self):
        backend = BillingBackend()
        backend.register_plan(PricingPlan("vision"))
        backend.enroll_device("dev-1")
        grant = backend.sell_package("dev-1", "vision", 10)
        assert grant.verify(backend.signing_key())
        forged = QuotaGrant(grant.grant_id, grant.device_id, grant.model_name, 10**6, grant.signature)
        assert not forged.verify(backend.signing_key())

    def test_selling_requires_enrollment_and_plan(self):
        backend = BillingBackend()
        backend.register_plan(PricingPlan("vision"))
        with pytest.raises(KeyError):
            backend.sell_package("ghost", "vision", 10)
        backend.enroll_device("dev-1")
        with pytest.raises(KeyError):
            backend.sell_package("dev-1", "unknown-model", 10)

    def test_grant_for_other_device_rejected(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        backend.enroll_device("dev-2")
        foreign = backend.sell_package("dev-2", "vision", 10)
        with pytest.raises(ValueError):
            ledger.add_grant(foreign)


class TestUsageLedger:
    def test_quota_enforced_offline(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(50):
            ledger.record_query("vision")
        with pytest.raises(QuotaExceededError):
            ledger.record_query("vision")
        assert ledger.used("vision") == 50
        assert ledger.remaining("vision") == 0

    def test_chain_verifies_when_untouched(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        assert ledger.verify_chain()

    def test_editing_an_entry_breaks_chain(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        entry = ledger.entries[5]
        ledger.entries[5] = type(entry)(
            index=entry.index,
            grant_id=entry.grant_id,
            model_name="other-model",
            timestamp=entry.timestamp,
            prev_mac=entry.prev_mac,
            mac=entry.mac,
        )
        assert not ledger.verify_chain()

    def test_deleting_an_entry_breaks_chain(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        del ledger.entries[3]
        assert not ledger.verify_chain()

    def test_wrong_key_fails_verification(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        ledger.record_query("vision")
        assert not ledger.verify_chain(key=b"wrong-key")

    def test_multiple_grants_consumed_in_order(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        second = backend.sell_package("dev-1", "vision", 10)
        ledger.add_grant(second, backend_key=backend.signing_key())
        for _ in range(55):
            ledger.record_query("vision")
        assert ledger.remaining("vision") == 5


class TestReconciliation:
    def test_honest_ledger_accepted_and_billed(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(30):
            ledger.record_query("vision")
        result = backend.reconcile(ledger.export())
        assert result.accepted
        assert result.billed_amount == pytest.approx(30 * 0.0015)
        report = backend.usage_report()
        assert report["total_synced_queries"] == 30 and report["n_rejected"] == 0

    def test_incremental_sync_only_bills_new_entries(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(10):
            ledger.record_query("vision")
        backend.reconcile(ledger.export())
        for _ in range(5):
            ledger.record_query("vision")
        second = backend.reconcile(ledger.export())
        assert second.n_new_entries == 5
        assert second.billed_amount == pytest.approx(5 * 0.0015)

    def test_tampered_mac_rejected(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(10):
            ledger.record_query("vision")
        export = ledger.export()
        export["entries"][4]["model_name"] = "free-model"
        result = backend.reconcile(export)
        assert not result.accepted and any("MAC" in i for i in result.issues)

    def test_rollback_detected(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        for _ in range(20):
            ledger.record_query("vision")
        backend.reconcile(ledger.export())
        truncated = ledger.export()
        truncated["entries"] = truncated["entries"][:5]
        result = backend.reconcile(truncated)
        assert not result.accepted and any("rollback" in i for i in result.issues)

    def test_unenrolled_device_rejected(self):
        backend = BillingBackend()
        result = backend.reconcile({"device_id": "stranger", "entries": []})
        assert not result.accepted

    def test_foreign_grant_flagged(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        ledger.record_query("vision")
        export = ledger.export()
        export["entries"][0]["grant_id"] = "grant-999999"
        # Recompute a fresh, internally consistent chain with the forged grant
        # using the device key (simulating a malicious but key-holding device).
        forged = UsageLedger("dev-1", backend.device_keys["dev-1"])
        mac = forged._next_mac(0, "grant-999999", "vision", 1.0, UsageLedger.GENESIS)
        export["entries"] = [
            {"index": 0, "grant_id": "grant-999999", "model_name": "vision", "timestamp": 1.0, "prev_mac": UsageLedger.GENESIS, "mac": mac}
        ]
        result = backend.reconcile(export)
        assert not result.accepted and any("unknown or foreign grant" in i for i in result.issues)

    def test_overuse_flagged(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        # Rebuild a ledger that claims more queries than granted by writing
        # entries directly with the device key.
        key = backend.device_keys["dev-1"]
        grant_id = next(iter(ledger.grants))
        cheat = UsageLedger("dev-1", key)
        cheat.grants = dict(ledger.grants)
        cheat._used_per_grant = {grant_id: 0}
        entries = []
        prev = UsageLedger.GENESIS
        for i in range(60):  # grant only covers 50
            mac = cheat._next_mac(i, grant_id, "vision", float(i), prev)
            entries.append({"index": i, "grant_id": grant_id, "model_name": "vision", "timestamp": float(i), "prev_mac": prev, "mac": mac})
            prev = mac
        result = backend.reconcile({"device_id": "dev-1", "entries": entries, "grants": {}})
        assert not result.accepted and any("over-used" in i for i in result.issues)


class TestBatchMetering:
    def test_batch_spans_grants_with_aggregated_entries(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        ledger.add_grant(backend.sell_package("dev-1", "vision", 10), backend_key=backend.signing_key())
        granted = ledger.record_batch("vision", 55)
        assert granted == 55
        # One aggregated entry per consumed grant, not one per query.
        assert len(ledger.entries) == 2
        assert [e.count for e in ledger.entries] == [50, 5]
        assert ledger.used("vision") == 55 and ledger.remaining("vision") == 5
        assert ledger.verify_chain()

    def test_partial_batch_truncates_to_quota(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        assert ledger.record_batch("vision", 80) == 50
        assert ledger.record_batch("vision", 10) == 0
        with pytest.raises(QuotaExceededError):
            ledger.record_query("vision")

    def test_strict_batch_raises_without_consuming(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        with pytest.raises(QuotaExceededError):
            ledger.record_batch("vision", 80, partial=False)
        assert ledger.used("vision") == 0 and ledger.remaining("vision") == 50

    def test_batch_equivalent_to_query_loop(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        twin_key = backend.enroll_device("dev-2")
        backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
        twin = UsageLedger("dev-2", twin_key)
        twin.add_grant(backend.sell_package("dev-2", "vision", 50), backend_key=backend.signing_key())
        assert ledger.record_batch("vision", 30) == 30
        for _ in range(30):
            twin.record_query("vision")
        assert ledger.used("vision") == twin.used("vision")
        assert ledger.remaining("vision") == twin.remaining("vision")
        batch_bill = backend.reconcile(ledger.export())
        loop_bill = backend.reconcile(twin.export())
        assert batch_bill.accepted and loop_bill.accepted
        assert batch_bill.billed_amount == loop_bill.billed_amount == pytest.approx(30 * 0.0015)
        assert batch_bill.n_new_queries == loop_bill.n_new_queries == 30

    def test_mixed_single_and_batch_entries_chain_and_reconcile(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        ledger.record_query("vision")
        ledger.record_batch("vision", 20)
        ledger.record_query("vision")
        assert ledger.used("vision") == 22
        assert ledger.verify_chain()
        result = backend.reconcile(ledger.export())
        assert result.accepted
        assert result.billed_amount == pytest.approx(22 * 0.0015)
        report = backend.usage_report()
        assert report["total_synced_queries"] == 22

    def test_tampered_count_breaks_chain(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        ledger.record_batch("vision", 25)
        export = ledger.export()
        export["entries"][0]["count"] = 1  # claim fewer queries than metered
        result = backend.reconcile(export)
        assert not result.accepted and any("MAC" in i for i in result.issues)

    def test_forged_batch_overuse_flagged(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        # A key-holding device forges one batch entry claiming more queries
        # than the grant covers: the chain verifies but over-use is flagged.
        grant_id = next(iter(ledger.grants))
        cheat = UsageLedger("dev-1", backend.device_keys["dev-1"])
        mac = cheat._next_mac(0, grant_id, "vision", 1.0, UsageLedger.GENESIS, count=500)
        entries = [{"index": 0, "grant_id": grant_id, "model_name": "vision", "timestamp": 1.0, "prev_mac": UsageLedger.GENESIS, "mac": mac, "count": 500}]
        result = backend.reconcile({"device_id": "dev-1", "entries": entries, "grants": {}})
        assert not result.accepted and any("over-used" in i for i in result.issues)

    def test_nonpositive_count_rejected_even_with_valid_mac(self, backend_and_ledger):
        backend, ledger = backend_and_ledger
        cheat = UsageLedger("dev-1", backend.device_keys["dev-1"])
        grant_id = next(iter(ledger.grants))
        mac = cheat._next_mac(0, grant_id, "vision", 1.0, UsageLedger.GENESIS, count=0)
        entries = [{"index": 0, "grant_id": grant_id, "model_name": "vision", "timestamp": 1.0, "prev_mac": UsageLedger.GENESIS, "mac": mac, "count": 0}]
        result = backend.reconcile({"device_id": "dev-1", "entries": entries, "grants": {}})
        assert not result.accepted

    def test_invalid_batch_sizes(self, backend_and_ledger):
        _, ledger = backend_and_ledger
        with pytest.raises(ValueError):
            ledger.record_batch("vision", -1)
        assert ledger.record_batch("vision", 0) == 0
        assert ledger.used("vision") == 0

    def test_rewritten_synced_count_cannot_dodge_billing(self, backend_and_ledger):
        # A key-holding device syncs a batch entry, then re-MACs its history
        # to inflate the already-billed entry's count while appending little:
        # billing works on per-model query-count deltas, so the smuggled
        # queries are billed anyway.
        backend, ledger = backend_and_ledger
        ledger.record_batch("vision", 10)
        first = backend.reconcile(ledger.export())
        assert first.accepted and first.n_new_queries == 10
        key = backend.device_keys["dev-1"]
        grant_id = next(iter(ledger.grants))
        cheat = UsageLedger("dev-1", key)
        mac0 = cheat._next_mac(0, grant_id, "vision", 1.0, UsageLedger.GENESIS, count=40)
        mac1 = cheat._next_mac(1, grant_id, "vision", 2.0, mac0, count=1)
        entries = [
            {"index": 0, "grant_id": grant_id, "model_name": "vision", "timestamp": 1.0, "prev_mac": UsageLedger.GENESIS, "mac": mac0, "count": 40},
            {"index": 1, "grant_id": grant_id, "model_name": "vision", "timestamp": 2.0, "prev_mac": mac0, "mac": mac1, "count": 1},
        ]
        second = backend.reconcile({"device_id": "dev-1", "entries": entries, "grants": {}})
        assert second.accepted
        assert second.n_new_queries == 31  # 41 total - 10 previously synced
        assert second.billed_amount == pytest.approx(31 * 0.0015)

    def test_shrunken_query_total_detected_as_rollback(self, backend_and_ledger):
        # Shrinking an already-synced entry's count (re-MACed with the
        # device key, entry count unchanged) is caught by the per-model
        # query-total monotonicity check.
        backend, ledger = backend_and_ledger
        ledger.record_batch("vision", 30)
        assert backend.reconcile(ledger.export()).accepted
        key = backend.device_keys["dev-1"]
        grant_id = next(iter(ledger.grants))
        cheat = UsageLedger("dev-1", key)
        mac0 = cheat._next_mac(0, grant_id, "vision", 1.0, UsageLedger.GENESIS, count=5)
        entries = [{"index": 0, "grant_id": grant_id, "model_name": "vision", "timestamp": 1.0, "prev_mac": UsageLedger.GENESIS, "mac": mac0, "count": 5}]
        result = backend.reconcile({"device_id": "dev-1", "entries": entries, "grants": {}})
        assert not result.accepted and any("rollback" in i for i in result.issues)
