"""Byzantine-quorum matrix: ``quorum_mode="verified"`` vs legacy.

Verified mode counts only non-byzantine deliveries with zero corrupt
attempts toward the quorum.  The matrix pins the two decisive behaviours:
a byzantine-heavy cohort aborts under verified while legacy commits, and
when the two modes agree the committed bytes are identical.
"""

import dataclasses

import numpy as np
import pytest

from _sharded_worlds import federated_world
from repro.faults import FaultInjector, FaultPlan, FaultRates, RetryPolicy
from repro.federated.engine import FederatedEngine, RoundScenario

N_CLIENTS = 8
ENGINES = ["batched", "oracle", "sharded"]


def _world(seed=4, quorum=None, quorum_mode="delivered", scenario=None, plan=None):
    fed = federated_world(seed, N_CLIENTS)
    fed.quorum = quorum
    fed.quorum_mode = quorum_mode
    fed.scenario = scenario
    if plan is not None:
        fed.fault_injector = FaultInjector(plan)
    return fed


def _byz_scenario(fed, n_byz):
    ids = frozenset(sorted(fed.clients)[:n_byz])
    return RoundScenario(byzantine_ids=ids, byzantine_mode="scale", byzantine_scale=5.0)


class TestModeValidation:
    def test_engine_rejects_unknown_mode(self):
        fed = federated_world(0, 4)
        with pytest.raises(ValueError, match="quorum_mode"):
            FederatedEngine(
                fed.global_model, list(fed.clients.values()), quorum_mode="strict"
            )

    def test_engine_accepts_both_modes(self):
        fed = federated_world(0, 4)
        for mode in ("delivered", "verified"):
            engine = FederatedEngine(
                fed.global_model, list(fed.clients.values()), quorum_mode=mode
            )
            assert engine.quorum_mode == mode


class TestByzantineDiscount:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_verified_aborts_where_legacy_commits(self, engine):
        """Half the cohort is byzantine: every delta still arrives, so the
        legacy count meets quorum, but the verified count cannot."""
        legacy = _world(quorum=0.6)
        legacy.scenario = _byz_scenario(legacy, N_CLIENTS // 2)
        legacy_result = legacy.run_round(0, engine=engine)
        assert not legacy_result.aborted

        verified = _world(quorum=0.6, quorum_mode="verified")
        verified.scenario = _byz_scenario(verified, N_CLIENTS // 2)
        before = verified.global_model.get_flat_weights().tobytes()
        result = verified.run_round(0, engine=engine)
        assert result.aborted
        assert "verified" in result.abort_reason
        assert result.quorum_shortfall > 0
        # The abort had zero side effects on the weights.
        assert verified.global_model.get_flat_weights().tobytes() == before

    @pytest.mark.parametrize("engine", ENGINES)
    def test_modes_commit_byte_identically_when_nothing_suspect(self, engine):
        """No byzantine clients, no corrupt attempts: the verified count
        equals the delivered count and the committed bytes match."""
        runs = {}
        for mode in ("delivered", "verified"):
            fed = _world(quorum=0.4, quorum_mode=mode)
            result = fed.run_round(0, engine=engine)
            assert not result.aborted
            runs[mode] = (fed.global_model.get_flat_weights().tobytes(), result.as_dict())
        assert runs["delivered"] == runs["verified"]

    def test_byzantine_deltas_still_aggregate_in_both_modes(self):
        """Verified mode changes only the quorum *count*: a met-quorum
        round aggregates byzantine deltas exactly like legacy mode."""
        runs = {}
        for mode in ("delivered", "verified"):
            fed = _world(quorum=0.25, quorum_mode=mode)
            fed.scenario = _byz_scenario(fed, 2)
            result = fed.run_round(0)
            assert not result.aborted
            runs[mode] = fed.global_model.get_flat_weights().tobytes()
        assert runs["delivered"] == runs["verified"]


class TestCorruptAttemptDiscount:
    def _corrupt_plan(self, fed, n_corrupt):
        """Every delivery eventually succeeds, but the first ``n_corrupt``
        clients' first attempts arrive damaged (corrupt-then-ok)."""
        clients = sorted(fed.clients)
        deliveries = tuple(
            (0, cid, ("corrupt", "ok")) for cid in clients[:n_corrupt]
        )
        return FaultPlan(seed=0, deliveries=deliveries)

    def test_corrupt_attempts_discount_the_verified_count(self):
        fed = _world(quorum=0.8, quorum_mode="verified")
        fed.fault_injector = FaultInjector(self._corrupt_plan(fed, 4))
        result = fed.run_round(0)
        # All deltas delivered (legacy would commit)...
        legacy = _world(quorum=0.8)
        legacy.fault_injector = FaultInjector(self._corrupt_plan(legacy, 4))
        assert not legacy.run_round(0).aborted
        # ...but four arrived via a corrupt attempt: verified aborts.
        assert result.aborted
        assert "verified" in result.abort_reason

    def test_clean_retransmits_count_as_verified(self):
        """Lost-then-ok is a clean delivery (no corrupt attempt): verified
        counts it, so the round commits in both modes."""
        fed = _world(quorum=0.8, quorum_mode="verified")
        clients = sorted(fed.clients)
        plan = FaultPlan(
            seed=0, deliveries=tuple((0, cid, ("lost", "ok")) for cid in clients[:4])
        )
        fed.fault_injector = FaultInjector(plan)
        result = fed.run_round(0)
        assert not result.aborted
        assert result.n_retransmits >= 4


class TestAbortReasonString:
    def test_legacy_reason_is_byte_identical_to_pre_verified_format(self):
        """The default mode's abort string must not change shape."""
        fed = _world(quorum=1.0)
        clients = sorted(fed.clients)
        rates = FaultRates()
        plan = FaultPlan(
            seed=0,
            deliveries=tuple(
                (0, cid, ("lost",) * rates.max_attempt_draws) for cid in clients[:3]
            ),
        )
        fed.fault_injector = FaultInjector(plan, retry_policy=RetryPolicy(max_attempts=2))
        result = fed.run_round(0)
        assert result.aborted
        assert " verified " not in result.abort_reason
        assert "quorum not met: " in result.abort_reason
        assert " deliverable of " in result.abort_reason

    def test_verified_reason_carries_the_mode_token(self):
        fed = _world(quorum=1.0, quorum_mode="verified")
        fed.scenario = _byz_scenario(fed, 1)
        result = fed.run_round(0)
        assert result.aborted
        assert " verified deliverable of " in result.abort_reason
