"""Transactional round checkpoints: interrupt, resume, byte-identity."""

import dataclasses

import numpy as np
import pytest

from _sharded_worlds import federated_world
from repro.faults import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    RoundCheckpoint,
    RoundInterrupted,
)

N_CLIENTS = 10
N_ROUNDS = 3


def _interrupt_plan(round_index, after_cohorts):
    return FaultPlan(seed=0, interrupts=((round_index, after_cohorts),))


def _world_with(plan, seed=4):
    fed = federated_world(seed, N_CLIENTS)
    fed.fault_injector = FaultInjector(plan)
    fed.checkpoints = CheckpointStore()
    return fed


def _run_with_resume(fed, n_rounds, engine=None):
    """Drive rounds; on an interrupt, re-issue the same round (resume)."""
    results, interrupted = [], []
    kwargs = {} if engine is None else {"engine": engine}
    for r in range(n_rounds):
        try:
            results.append(fed.run_round(r, **kwargs))
        except RoundInterrupted as exc:
            interrupted.append((exc.round_index, exc.checkpoint_digest))
            results.append(fed.run_round(r, **kwargs))
    return results, interrupted


@pytest.mark.parametrize("after_cohorts", [0, 1, 2, 99])
def test_resume_is_byte_identical_to_uninterrupted(after_cohorts):
    ref = federated_world(4, N_CLIENTS)
    ref_results = [ref.run_round(r) for r in range(N_ROUNDS)]

    fed = _world_with(_interrupt_plan(1, after_cohorts))
    results, interrupted = _run_with_resume(fed, N_ROUNDS)

    if after_cohorts == 99:
        # Scheduled past the round's cohort count: the coordinator never
        # reaches that point, so the interrupt cannot fire.
        assert interrupted == []
    else:
        assert len(interrupted) == 1
        assert interrupted[0][0] == 1
    assert (
        fed.global_model.get_flat_weights().tobytes()
        == ref.global_model.get_flat_weights().tobytes()
    )
    for got, want in zip(results, ref_results):
        assert got.as_dict() == want.as_dict()
    assert len(fed.history) == N_ROUNDS


def test_interrupt_carries_a_retrievable_checkpoint():
    fed = _world_with(_interrupt_plan(0, 1))
    with pytest.raises(RoundInterrupted) as exc_info:
        fed.run_round(0)
    digest = exc_info.value.checkpoint_digest
    ckpt = fed.checkpoints.get(digest)
    assert isinstance(ckpt, RoundCheckpoint)
    assert ckpt.round_index == 0
    assert ckpt.model_digest == fed._weights_digest()
    assert ckpt.n_cohorts_done >= 1
    assert ckpt.digest() == digest


def test_resume_restores_scheduler_rng_stream():
    """A resumed round must not burn a second selection draw."""
    ref = federated_world(4, N_CLIENTS)
    [ref.run_round(r) for r in range(N_ROUNDS)]

    fed = _world_with(_interrupt_plan(1, 0))
    _run_with_resume(fed, N_ROUNDS)
    assert (
        fed.scheduler._rng.bit_generator.state
        == ref.scheduler._rng.bit_generator.state
    )


def test_commit_clears_the_round_checkpoint():
    fed = _world_with(_interrupt_plan(0, 1))
    with pytest.raises(RoundInterrupted):
        fed.run_round(0)
    digest_before = fed._weights_digest()
    assert fed.checkpoints.latest_for(0, digest_before) is not None
    fed.run_round(0)
    # The pointer is gone for any weights digest once the round commits.
    assert fed.checkpoints.latest_for(0, digest_before) is None
    assert fed.checkpoints.latest_for(0, fed._weights_digest()) is None


def test_checkpoints_are_keyed_on_the_model_digest():
    fed = _world_with(_interrupt_plan(0, 1))
    with pytest.raises(RoundInterrupted):
        fed.run_round(0)
    # Different weights => the stale checkpoint must not resume.
    weights = fed.global_model.get_flat_weights()
    fed.global_model.set_flat_weights(weights + 1.0)
    assert fed.checkpoints.latest_for(0, fed._weights_digest()) is None
    fed.global_model.set_flat_weights(weights)
    assert fed.checkpoints.latest_for(0, fed._weights_digest()) is not None


def test_sharded_engine_with_checkpoints_matches_batched():
    ref = federated_world(4, N_CLIENTS)
    ref_results = [ref.run_round(r) for r in range(N_ROUNDS)]

    fed = _world_with(_interrupt_plan(1, 1))
    results, interrupted = _run_with_resume(fed, N_ROUNDS, engine="sharded")
    assert len(interrupted) == 1
    assert (
        fed.global_model.get_flat_weights().tobytes()
        == ref.global_model.get_flat_weights().tobytes()
    )
    assert [r.as_dict() for r in results] == [r.as_dict() for r in ref_results]


def test_multiple_interrupts_across_rounds():
    plan = FaultPlan(seed=0, interrupts=((0, 0), (2, 1)))
    ref = federated_world(4, N_CLIENTS)
    ref_results = [ref.run_round(r) for r in range(N_ROUNDS)]

    fed = _world_with(plan)
    results, interrupted = _run_with_resume(fed, N_ROUNDS)
    assert [r for r, _ in interrupted] == [0, 2]
    assert [r.as_dict() for r in results] == [r.as_dict() for r in ref_results]


def test_interrupts_are_inert_without_a_checkpoint_store():
    """No store configured => the coordinator cannot crash-and-resume, so
    the fault plan's interrupts are ignored rather than losing a round."""
    ref = federated_world(4, N_CLIENTS)
    ref_results = [ref.run_round(r) for r in range(N_ROUNDS)]

    fed = federated_world(4, N_CLIENTS)
    fed.fault_injector = FaultInjector(_interrupt_plan(1, 0))
    results = [fed.run_round(r) for r in range(N_ROUNDS)]
    assert [r.as_dict() for r in results] == [r.as_dict() for r in ref_results]


def test_checkpoint_store_snapshots_are_isolated():
    store = CheckpointStore()
    ckpt = RoundCheckpoint(
        round_index=0,
        model_digest="m",
        selected=("a",),
        contributors=("a",),
        stragglers=(),
        counts={},
    )
    ckpt.record_cohort(0, [0], np.ones((1, 3)), np.ones(1), np.ones(1))
    digest = store.put(ckpt)
    # Mutating the live object after put must not affect the stored copy.
    ckpt.record_cohort(1, [0], np.zeros((1, 3)), np.zeros(1), np.zeros(1))
    restored = store.get(digest)
    assert restored.n_cohorts_done == 1
    assert restored.digest() == digest


def test_checkpoint_digest_covers_cohort_bytes():
    def build(value):
        ckpt = RoundCheckpoint(
            round_index=0,
            model_digest="m",
            selected=("a",),
            contributors=("a",),
            stragglers=(),
            counts={},
        )
        ckpt.record_cohort(0, [0], np.full((1, 3), value), np.ones(1), np.ones(1))
        return ckpt

    assert build(1.0).digest() == build(1.0).digest()
    assert build(1.0).digest() != build(2.0).digest()


def test_interrupted_plan_minus_interrupts_is_the_reference_run():
    """dataclasses.replace(plan, interrupts=()) == the uninterrupted world."""
    plan = FaultPlan.generate(
        6, client_ids=[f"c{i}" for i in range(N_CLIENTS)], n_rounds=N_ROUNDS
    )
    plan = dataclasses.replace(plan, interrupts=((1, 1),))
    ref = federated_world(6, N_CLIENTS)
    ref.fault_injector = FaultInjector(dataclasses.replace(plan, interrupts=()))
    ref_results = [ref.run_round(r) for r in range(N_ROUNDS)]

    fed = _world_with(plan, seed=6)
    results, interrupted = _run_with_resume(fed, N_ROUNDS)
    assert len(interrupted) == 1
    assert [r.as_dict() for r in results] == [r.as_dict() for r in ref_results]
    assert (
        fed.global_model.get_flat_weights().tobytes()
        == ref.global_model.get_flat_weights().tobytes()
    )
