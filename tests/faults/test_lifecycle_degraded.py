"""Degradation telemetry must surface through the lifecycle loop."""

import numpy as np

from repro.core import PlatformConfig, TinyMLOpsPlatform
from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.devices import Fleet
from repro.faults import FaultInjector, FaultPlan, FaultRates
from repro.lifecycle import LifecycleConfig
from repro.nn import make_mlp


def _world(seed=21, n_devices=8):
    ds = make_gaussian_blobs(600, 12, 4, seed=seed)
    train, test = ds.split(0.3, seed=seed)
    fleet = Fleet.random(n_devices, seed=seed)
    platform = TinyMLOpsPlatform(
        fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=seed)
    )
    model = make_mlp(12, 4, hidden=(16,), seed=0, name="wakeword")
    model.fit(train.x, train.y, epochs=3, lr=0.01, seed=0)
    platform.release(model, test.x, test.y)
    platform.deploy("wakeword", prepaid_queries=2000)
    clients = partition_dirichlet(train, 5, alpha=0.7, seed=seed)
    return platform, test, clients


def _pipeline(platform, test, clients, **kwargs):
    return platform.lifecycle(
        "wakeword",
        clients,
        (test.x, test.y),
        config=LifecycleConfig(rounds=2, canary_windows=1, seed=21),
        **kwargs,
    )


def test_fault_free_cycle_has_no_degraded_block():
    platform, test, clients = _world()
    decision = _pipeline(platform, test, clients).run_cycle(trigger={"kind": "manual"})
    assert "degraded" not in decision.training


def test_faulty_retraining_surfaces_degradation_telemetry():
    platform, test, clients = _world()
    client_ids = [c.client_id for c in clients]
    plan = FaultPlan.generate(
        3,
        client_ids=client_ids,
        n_rounds=2,
        rates=FaultRates(device_crash=0.4, uplink_loss=0.4, uplink_duplicate=0.3),
    )
    assert not plan.is_empty
    pipeline = _pipeline(platform, test, clients, fault_injector=FaultInjector(plan))
    decision = pipeline.run_cycle(trigger={"kind": "manual"})
    degraded = decision.training["degraded"]
    assert (
        degraded["n_crashes"] + degraded["n_delivery_failures"]
        + degraded["n_retransmits"]
    ) >= 1


def test_quorum_abort_surfaces_in_the_decision_record():
    platform, test, clients = _world()
    client_ids = [c.client_id for c in clients]
    down = ("lost",) * FaultRates().max_attempt_draws
    # Round 0 is a full blackout; round 1 recovers.
    plan = FaultPlan(seed=0, deliveries=tuple((0, cid, down) for cid in client_ids))
    pipeline = _pipeline(
        platform, test, clients, fault_injector=FaultInjector(plan), quorum=0.5
    )
    decision = pipeline.run_cycle(trigger={"kind": "manual"})
    degraded = decision.training["degraded"]
    assert degraded["aborted_rounds"] == 1
    assert any("quorum not met" in reason for reason in degraded["abort_reasons"])
