"""Corruption regressions for the durable crash-recovery plane.

Every persisted artifact is digest-verified on load; these tests damage
the on-disk state in each of the ways a real crash or bad disk can and
assert the store raises a typed :class:`CheckpointCorrupted` naming the
offending path — never resumes from unverified bytes.
"""

import json
import os

import numpy as np
import pytest

from _sharded_worlds import federated_world
from repro.billing.metering import LedgerEntry, UsageLedger
from repro.faults import (
    CheckpointCorrupted,
    DurableCheckpointStore,
    DurableDecisionLog,
    FaultPlan,
    FaultRates,
    RoundCheckpoint,
)
from repro.persist import IntegrityError, atomic_write_bytes, read_bytes_verified


def _ckpt(round_index=0, model_digest="m", positions=(0, 1)):
    ckpt = RoundCheckpoint(
        round_index=round_index,
        model_digest=model_digest,
        selected=("a", "b"),
        contributors=("a", "b"),
        stragglers=(),
        counts={},
    )
    for pos in positions:
        ckpt.record_cohort(pos, [pos], np.full((1, 4), 1.5), np.ones(1), np.ones(1))
    return ckpt


def _object_path(store, digest):
    entry = store._manifest["checkpoints"][digest]
    return os.path.join(store.root, entry["file"])


class TestCorruptionDetection:
    def test_truncated_object_file(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        digest = store.put(_ckpt())
        path = _object_path(store, digest)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        fresh = DurableCheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupted) as exc_info:
            fresh.latest_for(0, "m")
        assert exc_info.value.path == path
        assert "truncated" in str(exc_info.value)

    def test_bit_flipped_object_file(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        digest = store.put(_ckpt())
        path = _object_path(store, digest)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        fresh = DurableCheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupted) as exc_info:
            fresh.get(digest)
        assert exc_info.value.path == path
        assert exc_info.value.expected  # the digest it wanted is named

    def test_stale_manifest_missing_file(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        digest = store.put(_ckpt())
        os.remove(_object_path(store, digest))
        fresh = DurableCheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupted, match="missing"):
            fresh.latest_for(0, "m")

    def test_tampered_manifest(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        store.put(_ckpt())
        manifest_path = os.path.join(store.root, "MANIFEST.json")
        body = json.loads(open(manifest_path).read())
        body["seq"] = 999  # edit without recomputing the self-digest
        with open(manifest_path, "w") as fh:
            json.dump(body, fh)
        with pytest.raises(CheckpointCorrupted, match="self-digest"):
            DurableCheckpointStore(tmp_path)

    def test_unparseable_manifest(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        store.put(_ckpt())
        with open(os.path.join(store.root, "MANIFEST.json"), "w") as fh:
            fh.write("{not json")
        with pytest.raises(CheckpointCorrupted):
            DurableCheckpointStore(tmp_path)

    def test_tmp_file_debris_is_invisible(self, tmp_path):
        """A crash mid-payload-write leaves only a tmp file: ignored."""
        store = DurableCheckpointStore(tmp_path)
        digest = store.put(_ckpt())
        debris = os.path.join(store.root, "objects", ".tmp-leftover")
        with open(debris, "wb") as fh:
            fh.write(b"half-written garbage")
        fresh = DurableCheckpointStore(tmp_path)
        assert len(fresh) == 1
        assert fresh.latest_for(0, "m").digest() == digest

    def test_orphan_payload_is_invisible(self, tmp_path):
        """A crash between payload rename and manifest flush leaves an
        orphan object file no manifest entry references: never loaded."""
        store = DurableCheckpointStore(tmp_path)
        store.put(_ckpt())
        orphan = os.path.join(store.root, "objects", "f" * 64 + ".npz")
        with open(orphan, "wb") as fh:
            fh.write(b"orphan bytes from a dead process")
        fresh = DurableCheckpointStore(tmp_path)
        assert len(fresh) == 1
        assert fresh.get("f" * 64) is None

    def test_resume_or_raise_names_the_digest_mismatch(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        store.put(_ckpt(round_index=2, model_digest="weights-A"))
        found = store.resume_or_raise(2, "weights-A")
        assert found.model_digest == "weights-A"
        with pytest.raises(CheckpointCorrupted) as exc_info:
            store.resume_or_raise(2, "weights-B")
        assert exc_info.value.expected == "weights-B"
        assert exc_info.value.actual == ["weights-A"]

    def test_corrupt_commit_record(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        store.record_commit(0, np.arange(3.0), {"round_index": 0})
        entry = store._manifest["commits"]["0"]
        path = os.path.join(store.root, entry["file"])
        with open(path, "ab") as fh:
            fh.write(b"extra")
        fresh = DurableCheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupted):
            fresh.latest_commit()


class TestPersistPrimitives:
    def test_atomic_write_then_verified_read(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        digest = atomic_write_bytes(path, b"payload")
        assert read_bytes_verified(path, digest, 7) == b"payload"

    def test_verified_read_rejects_wrong_size_first(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        digest = atomic_write_bytes(path, b"payload")
        with pytest.raises(IntegrityError, match="truncated"):
            read_bytes_verified(path, digest, 6)

    def test_failed_write_leaves_no_debris(self, tmp_path):
        # The "directory" is actually a file, so the write cannot commit.
        blocker = tmp_path / "sub"
        blocker.write_bytes(b"")
        with pytest.raises(OSError):
            atomic_write_bytes(str(blocker / "blob.bin"), b"x")
        assert list(tmp_path.iterdir()) == [blocker]


class TestPlanAndLedgerPersistence:
    def test_fault_plan_round_trips_with_digest(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        plan = FaultPlan.generate(
            11, client_ids=["c0", "c1"], n_rounds=3, n_windows=2,
            rates=FaultRates(round_interrupt=0.5),
        )
        digest = store.put_plan(plan)
        fresh = DurableCheckpointStore(tmp_path)
        restored = fresh.load_plan()
        assert restored.digest() == digest == plan.digest()
        assert fresh.load_plan(digest).digest() == digest

    def test_tampered_plan_rejected(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        digest = store.put_plan(FaultPlan(seed=1, interrupts=((0, 1),)))
        entry = store._manifest["records"][f"fault-plan/{digest}"]
        path = os.path.join(store.root, entry["file"])
        record = json.loads(open(path).read())
        record["plan"]["seed"] = 999
        # Re-commit the edit "atomically" so only the content digest is off.
        new_digest = atomic_write_bytes(
            path, json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        )
        entry["file_digest"] = new_digest
        entry["size"] = os.path.getsize(path)
        store._flush()
        fresh = DurableCheckpointStore(tmp_path)
        with pytest.raises(CheckpointCorrupted, match="plan content digest"):
            fresh.load_plan(digest)

    @staticmethod
    def _metered_ledger(quota=40):
        from repro.billing import BillingBackend, PricingPlan

        billing = BillingBackend()
        billing.register_plan(PricingPlan(model_name="m"))
        key = billing.enroll_device("dev-0")
        grant = billing.sell_package("dev-0", "m", quota)

        def build():
            ledger = UsageLedger("dev-0", key)
            ledger.add_grant(grant, backend_key=billing.signing_key())
            return ledger

        return build

    def test_ledger_segments_round_trip_with_macs(self, tmp_path):
        build = self._metered_ledger()
        ledger = build()
        for i in range(4):
            ledger.record_batch("m", 2 + i)
        segment = ledger.export_segment(0)
        store = DurableCheckpointStore(tmp_path)
        store.put_ledger_segments("round-0", {"dev-0": segment})

        fresh = DurableCheckpointStore(tmp_path)
        [(label, segments)] = fresh.iter_ledger_segments()
        assert label == "round-0"
        replay = build()
        replay.append_segment(segments["dev-0"])  # re-verifies every MAC
        assert replay.head_mac() == ledger.head_mac()
        assert replay.verify_chain()
        assert replay.used("m") == ledger.used("m")

    def test_tampered_ledger_segment_cannot_reenter_a_chain(self, tmp_path):
        build = self._metered_ledger()
        ledger = build()
        ledger.record_batch("m", 3)
        store = DurableCheckpointStore(tmp_path)
        store.put_ledger_segments("round-0", {"dev-0": ledger.export_segment(0)})
        entry = store._manifest["records"]["ledger-segment/round-0"]
        path = os.path.join(store.root, entry["file"])
        record = json.loads(open(path).read())
        record["segments"]["dev-0"][0]["count"] = 999  # inflate the bill
        new_digest = atomic_write_bytes(
            path, json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        )
        entry["file_digest"] = new_digest
        entry["size"] = os.path.getsize(path)
        store._flush()
        fresh = DurableCheckpointStore(tmp_path)
        [(_, segments)] = fresh.iter_ledger_segments()
        replay = build()
        with pytest.raises(ValueError):
            replay.append_segment(segments["dev-0"])


class TestMergeIntentWal:
    def test_begin_merge_is_pending_until_committed(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        token = store.begin_merge("serve", {"n_shards": 2})
        assert [p["token"] for p in store.pending_merges()] == [token]
        store.commit_merge(token)
        assert store.pending_merges() == []

    def test_crash_mid_merge_is_detectable_from_fresh_process(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        done = store.begin_merge("serve", {"n_shards": 2})
        store.commit_merge(done)
        interrupted = store.begin_merge("serve", {"n_shards": 3})
        # "crash": no commit_merge; a fresh process inspects and discards.
        fresh = DurableCheckpointStore(tmp_path)
        pending = fresh.pending_merges()
        assert [p["token"] for p in pending] == [interrupted]
        assert pending[0]["n_shards"] == 3
        assert fresh.discard_pending_merges() == 1
        assert fresh.pending_merges() == []

    def test_commit_unknown_token_raises(self, tmp_path):
        store = DurableCheckpointStore(tmp_path)
        with pytest.raises(KeyError):
            store.commit_merge("serve-000042")

    def test_sharded_serve_journals_the_barrier_merge(self, tmp_path):
        from _sharded_worlds import serving_world
        from repro.runtime.sharded import ShardedFleetRunner

        engine, window = serving_world(seed=5, n_devices=6)
        store = DurableCheckpointStore(tmp_path)
        engine.shard_runner = ShardedFleetRunner(
            workers=2, backend="inline", durable_store=store
        )
        report = engine.serve_fleet("m", window, engine="sharded")
        assert report is not None
        assert store.pending_merges() == []  # committed
        names = store.record_names("merge-intent", committed_only=False)
        assert len(names) == 1
        record = store.get_record("merge-intent", names[0])
        assert record["scope"] == "serve"
        assert record["n_shards"] >= 2


class TestDecisionLog:
    def test_append_load_round_trip(self, tmp_path):
        log = DurableDecisionLog(tmp_path)
        log.append({"cycle": 0, "promoted": True})
        log.append({"cycle": 1, "promoted": False})
        fresh = DurableDecisionLog(tmp_path)
        assert len(fresh) == 2
        assert [d["cycle"] for d in fresh.load()] == [0, 1]

    def test_shares_state_dir_with_engine_store(self, tmp_path):
        """The decision log owns a subdirectory, so one state_dir can hold
        both an engine's checkpoints and the lifecycle decisions."""
        store = DurableCheckpointStore(tmp_path)
        store.put(_ckpt())
        log = DurableDecisionLog(tmp_path)
        log.append({"cycle": 0})
        # Neither clobbered the other's manifest.
        assert len(DurableCheckpointStore(tmp_path)) == 1
        assert len(DurableDecisionLog(tmp_path)) == 1


class TestLifecycleDurableRestart:
    @staticmethod
    def _world(seed=21):
        from repro.core import PlatformConfig, TinyMLOpsPlatform
        from repro.data import make_gaussian_blobs, partition_dirichlet
        from repro.devices import Fleet
        from repro.nn import make_mlp

        ds = make_gaussian_blobs(600, 12, 4, seed=seed)
        train, test = ds.split(0.3, seed=seed)
        fleet = Fleet.random(8, seed=seed)
        platform = TinyMLOpsPlatform(
            fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=seed)
        )
        model = make_mlp(12, 4, hidden=(16,), seed=0, name="wakeword")
        model.fit(train.x, train.y, epochs=3, lr=0.01, seed=0)
        platform.release(model, test.x, test.y)
        platform.deploy(
            "wakeword",
            reference_x=train.x[:100],
            reference_predictions=model.predict_classes(train.x[:100]),
            num_classes=4,
            prepaid_queries=2000,
        )
        clients = partition_dirichlet(train, 4, alpha=0.7, seed=seed)
        return platform, clients, test

    def test_lifecycle_decisions_survive_restart(self, tmp_path):
        from repro.lifecycle import LifecycleConfig

        config = LifecycleConfig(rounds=1, canary_windows=2, seed=21)
        platform, clients, test = self._world()
        pipe = platform.lifecycle(
            "wakeword", clients, (test.x, test.y),
            config=config, state_dir=str(tmp_path / "lc"),
        )
        first = pipe.run_cycle(trigger={"kind": "manual"})
        assert pipe._cycles == 1

        # Restart: a fresh platform world + a fresh pipeline over the same
        # state_dir replays the decision log.
        platform2, clients2, test2 = self._world()
        pipe2 = platform2.lifecycle(
            "wakeword", clients2, (test2.x, test2.y),
            config=config, state_dir=str(tmp_path / "lc"),
        )
        assert pipe2._cycles == 1
        assert len(pipe2.history) == 1
        restored = pipe2.history[0]
        assert restored.cycle == first.cycle
        assert restored.promoted == first.promoted
        assert restored.candidate_version == first.candidate_version
        assert restored.record_digest == first.record_digest
        assert restored.promotion == first.promotion
        if first.promoted:
            assert restored.promotion.get("version") == first.candidate_version
            assert restored.promotion.get("flipped_devices")

        # The next cycle numbers itself after the restored history.
        second = pipe2.run_cycle(trigger={"kind": "manual"})
        assert second.cycle == 1
        assert len(DurableDecisionLog(str(tmp_path / "lc")).load()) == 2
