"""Chaos differential suite: system invariants under seeded fault plans.

For a matrix of fault-plan seeds (override with ``REPRO_CHAOS_SEEDS``,
comma-separated) this suite asserts the transactional guarantees of the
fault plane:

* ledger MAC chains verify after every faulty run;
* billing is exact — quota is metered per admission, partitioned queries
  are never billed, and with healthy batteries billed == served;
* the empty fault plan is byte-identical to running without an injector
  at all, on every engine path;
* a faulty run is byte-identical across ``engine="batched" | "oracle" |
  "sharded"``;
* a quorum abort leaves weights, client state, fleet planes and ledgers
  byte-untouched.
"""

import os
import pickle

import numpy as np
import pytest

from _sharded_worlds import federated_world, serving_snapshot, serving_world
from repro.devices import Fleet
from repro.faults import FaultInjector, FaultPlan, FaultRates, RetryPolicy
from repro.runtime.sharded import ShardedFleetRunner

SEEDS = [
    int(s) for s in os.environ.get("REPRO_CHAOS_SEEDS", "").split(",") if s.strip()
] or list(range(8))

N_DEVICES = 12
N_WINDOWS = 4
N_CLIENTS = 10
N_ROUNDS = 3

SERVE_RATES = FaultRates(partition=0.25, device_crash=0.0, uplink_loss=0.0,
                         uplink_corrupt=0.0, uplink_duplicate=0.0)
FED_RATES = FaultRates(partition=0.0, device_crash=0.15, uplink_loss=0.25,
                       uplink_corrupt=0.1, uplink_duplicate=0.2)


def _windows(seed, device_ids):
    rng = np.random.default_rng(seed + 1000)
    return [
        {d: rng.normal(size=(int(rng.integers(0, 9)), 8)) for d in device_ids}
        for _ in range(N_WINDOWS)
    ]


def _serve_plan(seed):
    return FaultPlan.generate(
        seed,
        device_ids=[f"dev-{i:04d}" for i in range(N_DEVICES)],
        n_windows=N_WINDOWS,
        rates=SERVE_RATES,
    )


def _fed_plan(seed):
    return FaultPlan.generate(
        seed,
        client_ids=[f"c{i}" for i in range(N_CLIENTS)],
        n_rounds=N_ROUNDS,
        rates=FED_RATES,
    )


def _serving_chaos_run(seed, plan, engine="batched", plugged=False, **runner_kwargs):
    world, _ = serving_world(seed, N_DEVICES)
    device_ids = [d.device_id for d in world.fleet]
    if plugged:
        world.fleet.state.plugged_in[:] = True
    world.fault_injector = FaultInjector(plan)
    if engine == "sharded":
        world.shard_runner = ShardedFleetRunner(backend="inline", **runner_kwargs)
    report = world.serve_fleet("m", _windows(seed, device_ids), engine=engine)
    return world, report


# -- serving invariants ---------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_ledger_chains_verify_under_faults(seed):
    world, report = _serving_chaos_run(seed, _serve_plan(seed))
    assert report.n_windows == N_WINDOWS
    for ledger in world.ledgers.values():
        assert ledger.verify_chain()


@pytest.mark.parametrize("seed", SEEDS)
def test_billing_is_exact_under_partitions(seed):
    """Quota admissions are billed; partitioned queries never are."""
    world, report = _serving_chaos_run(seed, _serve_plan(seed))
    per_device = report.per_device
    for device_id, stats in per_device.items():
        assert stats["requested"] == (
            stats["served"] + stats["denied_quota"]
            + stats["battery_failures"] + stats["network_failures"]
        )
        if device_id in world.ledgers:
            # Metering happens at admission: billed == served + the
            # battery failures that were admitted first.
            assert world.ledgers[device_id].used() == (
                stats["served"] + stats["battery_failures"]
            )
        else:
            # Devices without a ledger are not metered at all.
            assert stats["denied_quota"] == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_billing_equals_served_exactly_when_batteries_hold(seed):
    world, report = _serving_chaos_run(seed, _serve_plan(seed), plugged=True)
    assert report.battery_failures == 0
    per_device = report.per_device
    for device_id, ledger in world.ledgers.items():
        assert ledger.used() == per_device[device_id]["served"]


@pytest.mark.parametrize("seed", SEEDS)
def test_network_failures_match_the_plan_exactly(seed):
    plan = _serve_plan(seed)
    world, report = _serving_chaos_run(seed, plan)
    device_ids = [d.device_id for d in world.fleet]
    windows = _windows(seed, device_ids)
    expected = sum(
        windows[w][d].shape[0] for w, d in plan.serve_offline if w < len(windows)
    )
    assert report.network_failures == expected
    if expected:
        assert report.requested > report.served


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine", ["oracle", "sharded"])
def test_faulty_run_is_identical_across_engines(seed, engine):
    plan = _serve_plan(seed)
    ref_world, ref_report = _serving_chaos_run(seed, plan, engine="batched")
    world, report = _serving_chaos_run(seed, plan, engine=engine)
    assert serving_snapshot(world) == serving_snapshot(ref_world)
    assert report.as_dict() == ref_report.as_dict()


@pytest.mark.parametrize("seed", SEEDS)
def test_empty_plan_serving_is_byte_identical_to_no_injector(seed):
    device_ids = [f"dev-{i:04d}" for i in range(N_DEVICES)]
    for engine in ("batched", "oracle", "sharded"):
        bare, _ = serving_world(seed, N_DEVICES)
        if engine == "sharded":
            bare.shard_runner = ShardedFleetRunner(backend="inline")
        bare_report = bare.serve_fleet("m", _windows(seed, device_ids), engine=engine)
        world, report = _serving_chaos_run(seed, FaultPlan.empty(seed), engine=engine)
        assert serving_snapshot(world) == serving_snapshot(bare)
        assert report.as_dict() == bare_report.as_dict()


# -- federated invariants -------------------------------------------------


def _federated_chaos_run(seed, plan, engine="batched", **engine_kwargs):
    fed = federated_world(seed, N_CLIENTS)
    fed.fault_injector = FaultInjector(plan)
    for key, value in engine_kwargs.items():
        setattr(fed, key, value)
    results = [fed.run_round(r, engine=engine) for r in range(N_ROUNDS)]
    return fed, results


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine", ["oracle", "sharded"])
def test_faulty_rounds_are_identical_across_engines(seed, engine):
    plan = _fed_plan(seed)
    ref, ref_results = _federated_chaos_run(seed, plan, engine="batched")
    fed, results = _federated_chaos_run(seed, plan, engine=engine)
    assert [r.as_dict() for r in results] == [r.as_dict() for r in ref_results]
    assert (
        fed.global_model.get_flat_weights().tobytes()
        == ref.global_model.get_flat_weights().tobytes()
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_faulty_rounds_surface_degradation_telemetry(seed):
    plan = _fed_plan(seed)
    _, results = _federated_chaos_run(seed, plan)
    crashes = {r for r, _ in plan.crashes}
    for result in results:
        if result.round_index in crashes:
            assert result.n_crashes >= 1
    assert sum(r.n_retransmits for r in results) >= 0
    totals = sum(r.n_crashes + r.n_delivery_failures + r.n_duplicates for r in results)
    if not plan.is_empty:
        assert totals >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_empty_plan_federated_is_byte_identical_to_no_injector(seed):
    for engine in ("batched", "oracle"):
        bare = federated_world(seed, N_CLIENTS)
        bare_results = [bare.run_round(r, engine=engine) for r in range(N_ROUNDS)]
        fed, results = _federated_chaos_run(seed, FaultPlan.empty(seed), engine=engine)
        assert [r.as_dict() for r in results] == [r.as_dict() for r in bare_results]
        assert (
            fed.global_model.get_flat_weights().tobytes()
            == bare.global_model.get_flat_weights().tobytes()
        )


# -- quorum commit --------------------------------------------------------


def _blackout_plan(round_index, client_ids):
    """Every client's link is down for one whole round."""
    down = ("lost",) * FaultRates().max_attempt_draws
    return FaultPlan(
        seed=0, deliveries=tuple((round_index, cid, down) for cid in client_ids)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_quorum_abort_leaves_the_world_byte_untouched(seed):
    client_ids = [f"c{i}" for i in range(N_CLIENTS)]
    fed = federated_world(seed, N_CLIENTS)
    fed.fleet = Fleet.random(N_CLIENTS, seed=seed + 50)
    fed.device_map = {
        cid: dev.device_id for cid, dev in zip(client_ids, fed.fleet)
    }
    fed.fault_injector = FaultInjector(_blackout_plan(0, client_ids))
    fed.quorum = 0.5

    weights_before = fed.global_model.get_flat_weights().tobytes()
    clients_before = {cid: pickle.dumps(c) for cid, c in fed.clients.items()}
    level_before = fed.fleet.state.level_j.tobytes()

    result = fed.run_round(0)
    assert result.aborted
    assert "quorum not met" in result.abort_reason
    assert result.participants == []
    assert result.uplink_bytes == 0 and result.downlink_bytes == 0
    assert result.quorum_required >= 1
    assert result.quorum_shortfall == result.quorum_required
    assert result.n_delivery_failures == N_CLIENTS

    assert fed.global_model.get_flat_weights().tobytes() == weights_before
    assert {cid: pickle.dumps(c) for cid, c in fed.clients.items()} == clients_before
    assert fed.fleet.state.level_j.tobytes() == level_before

    # The next round (links restored) commits normally.
    follow_up = fed.run_round(1)
    assert not follow_up.aborted and follow_up.participants


def test_quorum_met_commits_despite_partial_failures():
    client_ids = [f"c{i}" for i in range(N_CLIENTS)]
    down = ("lost",) * FaultRates().max_attempt_draws
    plan = FaultPlan(seed=0, deliveries=((0, client_ids[0], down),))
    fed = federated_world(0, N_CLIENTS)
    fed.fault_injector = FaultInjector(plan)
    fed.quorum = 0.5
    result = fed.run_round(0)
    assert not result.aborted
    assert result.n_delivery_failures == 1
    assert client_ids[0] not in result.participants
    assert result.quorum_required == 5


def test_quorum_validation():
    fed = federated_world(0, 4)
    with pytest.raises(ValueError):
        type(fed)(fed.global_model, list(fed.clients.values()), quorum=0.0)
    with pytest.raises(ValueError):
        type(fed)(fed.global_model, list(fed.clients.values()), quorum=1.5)


# -- plan-driven shard worker faults --------------------------------------


def test_plan_driven_worker_faults_recover_byte_identically():
    """A plan that kills pool workers still merges the exact bytes."""
    plan = FaultPlan(
        seed=0,
        shard_faults=(("train", 0, 0, "raise"), ("train", 1, 1, "exit")),
    )
    ref = federated_world(3, N_CLIENTS)
    ref_results = [ref.run_round(r) for r in range(2)]

    fed = federated_world(3, N_CLIENTS)
    inj = FaultInjector(plan)
    fed.fault_injector = inj
    fed.shard_runner = ShardedFleetRunner(
        workers=2,
        backend="pickle",
        timeout_s=30.0,
        fault_injector=inj,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    results = [fed.run_round(r, engine="sharded") for r in range(2)]

    assert (
        fed.global_model.get_flat_weights().tobytes()
        == ref.global_model.get_flat_weights().tobytes()
    )
    for got, want in zip(results, ref_results):
        got_d, want_d = got.as_dict(), want.as_dict()
        recoveries = got_d.pop("shard_recoveries")
        want_d.pop("shard_recoveries")
        assert got_d == want_d
    assert sum(r.shard_recoveries for r in results) >= 1
