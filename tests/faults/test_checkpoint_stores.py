"""One behavioural contract, two stores: in-memory and durable.

Every test here runs against both ``CheckpointStore()`` and a
``DurableCheckpointStore`` on a fresh tmpdir — the durable plane's whole
point is that the engine cannot tell the difference until the process
dies.
"""

import numpy as np
import pytest

from repro.faults import CheckpointStore, DurableCheckpointStore, RoundCheckpoint


@pytest.fixture(params=["memory", "durable"])
def store_factory(request, tmp_path):
    """A zero-arg factory; the durable flavour reuses one directory, so
    calling it twice models a process restart over the same state dir."""
    if request.param == "memory":
        store = CheckpointStore()
        return lambda: store
    return lambda: DurableCheckpointStore(tmp_path / "state")


def _ckpt(round_index=0, model_digest="m", value=1.0, positions=(0,)):
    ckpt = RoundCheckpoint(
        round_index=round_index,
        model_digest=model_digest,
        selected=("a", "b"),
        contributors=("a", "b"),
        stragglers=(),
        counts={"n_dropouts": 0},
    )
    for pos in positions:
        ckpt.record_cohort(pos, [pos], np.full((1, 3), value), np.ones(1), np.ones(1))
    return ckpt


class TestStoreContract:
    def test_empty_store(self, store_factory):
        store = store_factory()
        assert len(store) == 0
        assert store.latest_for(0, "m") is None
        assert store.get("0" * 64) is None
        assert store.latest_commit() is None
        store.clear_round(0)  # clearing an empty round is a no-op, not an error

    def test_put_get_round_trip(self, store_factory):
        store = store_factory()
        ckpt = _ckpt()
        digest = store.put(ckpt)
        restored = store.get(digest)
        assert restored.digest() == digest
        assert restored.n_cohorts_done == 1
        np.testing.assert_array_equal(
            restored.cohorts[0]["deltas"], ckpt.cohorts[0]["deltas"]
        )

    def test_put_is_idempotent_and_content_addressed(self, store_factory):
        store = store_factory()
        d1 = store.put(_ckpt(value=1.0))
        d2 = store.put(_ckpt(value=1.0))
        d3 = store.put(_ckpt(value=2.0))
        assert d1 == d2 != d3
        assert len(store) == 2

    def test_multiple_checkpoints_per_round_latest_wins(self, store_factory):
        store = store_factory()
        store.put(_ckpt(positions=(0,)))
        later = _ckpt(positions=(0, 1))
        digest = store.put(later)
        found = store.latest_for(0, "m")
        assert found.digest() == digest
        assert found.n_cohorts_done == 2

    def test_latest_for_is_keyed_on_round_and_model(self, store_factory):
        store = store_factory()
        store.put(_ckpt(round_index=1, model_digest="m1"))
        assert store.latest_for(1, "m2") is None
        assert store.latest_for(2, "m1") is None
        assert store.latest_for(1, "m1") is not None

    def test_clear_round_drops_pointer_keeps_archive(self, store_factory):
        store = store_factory()
        digest = store.put(_ckpt(round_index=3))
        store.clear_round(3)
        assert store.latest_for(3, "m") is None
        # Archive retention: the object itself outlives the pointer.
        assert store.get(digest) is not None

    def test_clear_then_resume_round_restarts_clean(self, store_factory):
        store = store_factory()
        store.put(_ckpt(round_index=0, positions=(0,)))
        store.clear_round(0)
        # A new attempt at the round sees no stale progress and re-puts.
        assert store.latest_for(0, "m") is None
        fresh = store.put(_ckpt(round_index=0, positions=()))
        assert store.latest_for(0, "m").digest() == fresh

    def test_snapshots_are_isolated_from_live_mutation(self, store_factory):
        store = store_factory()
        ckpt = _ckpt()
        digest = store.put(ckpt)
        ckpt.record_cohort(5, [5], np.zeros((1, 3)), np.zeros(1), np.zeros(1))
        assert store.get(digest).n_cohorts_done == 1

    def test_commit_records_round_trip(self, store_factory):
        store = store_factory()
        weights = np.linspace(-1.0, 1.0, 7)
        result = {"round_index": 2, "global_accuracy": 0.5, "participants": ["a"]}
        sched = {"bit_generator": "PCG64", "state": {"state": 123, "inc": 5}}
        store.record_commit(2, weights, result, sched)
        commit = store.latest_commit()
        assert commit["round_index"] == 2
        assert commit["weights"].tobytes() == weights.tobytes()
        assert commit["result"] == result
        assert commit["scheduler_state"] == sched

    def test_latest_commit_is_highest_round(self, store_factory):
        store = store_factory()
        for r in (0, 2, 1):
            store.record_commit(r, np.full(3, float(r)), {"round_index": r})
        assert store.latest_commit()["round_index"] == 2


class TestDurableRestart:
    """Cross-instance behaviour only the durable flavour can exhibit."""

    def test_fresh_instance_sees_committed_state(self, tmp_path):
        first = DurableCheckpointStore(tmp_path / "s")
        digest = first.put(_ckpt(round_index=1, positions=(0, 1)))
        first.record_commit(0, np.arange(4.0), {"round_index": 0})

        second = DurableCheckpointStore(tmp_path / "s")
        assert len(second) == 1
        assert second.latest_for(1, "m").digest() == digest
        assert second.latest_commit()["round_index"] == 0

    def test_clear_round_survives_restart(self, tmp_path):
        first = DurableCheckpointStore(tmp_path / "s")
        first.put(_ckpt(round_index=0))
        first.clear_round(0)
        second = DurableCheckpointStore(tmp_path / "s")
        assert second.latest_for(0, "m") is None
