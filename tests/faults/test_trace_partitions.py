"""ConnectivityTrace-driven serving partitions through the FaultInjector.

The injector steps every trace once per window (in sorted device order,
devices absent from the window included) and partitions the devices whose
Markov chain landed offline, in union with the plan's flat
``serve_offline`` table.  ``reset()`` rewinds the chains, so trace-driven
runs replay deterministically.
"""

import numpy as np
import pytest

from _sharded_worlds import serving_world, serving_snapshot
from repro.devices.network import ConnectivityTrace, NetworkType
from repro.faults import FaultInjector, FaultPlan


def _offline_heavy_trace(seed=0):
    """A sticky chain that starts offline and mostly stays there."""
    return ConnectivityTrace(
        states=(NetworkType.OFFLINE, NetworkType.WIFI),
        transition=np.array([[0.9, 0.1], [0.5, 0.5]]),
        initial=NetworkType.OFFLINE,
        seed=seed,
    )


def _always_online_trace(seed=0):
    return ConnectivityTrace(
        states=(NetworkType.WIFI,), transition=np.array([[1.0]]), seed=seed
    )


def _windows(device_ids, n=4, seed=3):
    rng = np.random.default_rng(seed)
    return [{d: rng.normal(size=(2, 8)) for d in device_ids} for _ in range(n)]


class TestFilterWindow:
    def test_all_online_traces_are_a_noop(self):
        inj = FaultInjector(
            FaultPlan(seed=0),
            connectivity={"a": _always_online_trace(), "b": _always_online_trace(1)},
        )
        window = {"a": np.ones((1, 2)), "b": np.ones((1, 2))}
        kept, dropped = inj.filter_window(window)
        assert kept == window and dropped == {}

    def test_offline_trace_partitions_deterministically(self):
        inj = FaultInjector(
            FaultPlan(seed=0), connectivity={"a": _offline_heavy_trace()}
        )
        window = {"a": np.ones((1, 2)), "b": np.ones((1, 2))}
        outcomes = [sorted(inj.filter_window(dict(window))[1]) for _ in range(8)]
        assert any("a" in d for d in outcomes)  # it does go offline
        assert all("b" not in d for d in outcomes)  # untraced devices never

    def test_reset_replays_the_same_partition_sequence(self):
        inj = FaultInjector(
            FaultPlan(seed=0),
            connectivity={"a": _offline_heavy_trace(), "b": _offline_heavy_trace(7)},
        )
        window = {"a": np.ones((1, 2)), "b": np.ones((1, 2))}
        first = [sorted(inj.filter_window(dict(window))[1]) for _ in range(6)]
        inj.reset()
        second = [sorted(inj.filter_window(dict(window))[1]) for _ in range(6)]
        assert first == second

    def test_union_with_plan_offline_table(self):
        plan = FaultPlan(seed=0, serve_offline=((0, "b"),))
        inj = FaultInjector(plan, connectivity={"a": _offline_heavy_trace()})
        window = {"a": np.ones((1, 2)), "b": np.ones((1, 2))}
        kept, dropped = inj.filter_window(window)
        assert "b" in dropped  # from the plan table
        assert "a" in dropped  # from the trace (starts offline, sticky)

    def test_traces_step_even_when_absent_from_the_window(self):
        """Chain positions track the window counter, not the traffic: a
        device that skips a window reaches the same state either way."""
        a, b = _offline_heavy_trace(5), _offline_heavy_trace(5)
        full = FaultInjector(FaultPlan(seed=0), connectivity={"dev": a})
        sparse = FaultInjector(FaultPlan(seed=0), connectivity={"dev": b})
        for i in range(5):
            full.filter_window({"dev": np.ones((1, 2))})
            sparse.filter_window({} if i % 2 else {"other": np.ones((1, 2))})
        assert a.state_dict() == b.state_dict()


class TestTraceStateDict:
    def test_round_trips_chain_position_and_rng(self):
        trace = _offline_heavy_trace(3)
        for _ in range(4):
            trace.step()
        snapshot = trace.state_dict()
        expected = [trace.step().kind for _ in range(5)]
        trace.load_state_dict(snapshot)
        replayed = [trace.step().kind for _ in range(5)]
        assert replayed == expected


class TestServingIntegration:
    def test_trace_partitions_drop_queries_not_bill_them(self):
        engine, window = serving_world(seed=6, n_devices=6)
        traced = sorted(window)[:2]
        inj = FaultInjector(
            FaultPlan(seed=0),
            connectivity={d: _offline_heavy_trace(i) for i, d in enumerate(traced)},
        )
        engine.fault_injector = inj
        report = engine.serve_fleet("m", window)
        n_queries = sum(int(np.asarray(x).shape[0]) for x in window.values())
        assert report.network_failures > 0
        assert report.requested == n_queries
        # Partitioned queries are neither served nor billed.
        assert (
            report.served
            + report.denied_quota
            + report.battery_failures
            + report.network_failures
            == n_queries
        )

    def test_reset_makes_traced_serving_replayable(self):
        runs = []
        for _ in range(2):
            engine, window = serving_world(seed=6, n_devices=6)
            traced = sorted(window)[:2]
            engine.fault_injector = FaultInjector(
                FaultPlan(seed=0),
                connectivity={d: _offline_heavy_trace(i) for i, d in enumerate(traced)},
            )
            engine.serve_fleet("m", window)
            runs.append(serving_snapshot(engine))
        assert runs[0] == runs[1]
