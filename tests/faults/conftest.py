"""Shared path shim: reuse the deterministic world builders from the
sharded-backend suites (tests/runtime/_sharded_worlds.py)."""

import sys
from pathlib import Path

_RUNTIME = Path(__file__).resolve().parent.parent / "runtime"
if str(_RUNTIME) not in sys.path:
    sys.path.insert(0, str(_RUNTIME))
