"""The crash-recovery example must keep running (and keep proving itself).

Imports ``examples/crash_recovery.py`` and runs its ``main`` against a
tmp state directory; the example asserts internally that the recovered
weights are bit-identical to an uninterrupted run.
"""

import importlib.util
import os

_EXAMPLE = os.path.abspath(
    os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "crash_recovery.py"
    )
)


def _load_example():
    spec = importlib.util.spec_from_file_location("crash_recovery_example", _EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_example_runs_and_recovers(tmp_path, capsys):
    example = _load_example()
    example.main(str(tmp_path / "state"))  # asserts bit-identity internally
    out = capsys.readouterr().out
    assert "bit-identical to uninterrupted run: True" in out
    assert "resuming round 2" in out
