"""Unit tests for the fault plane primitives: plans, injector, retries."""

import math

import numpy as np
import pytest

from repro.faults import (
    DeliveryResult,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRates,
    RetryPolicy,
    simulate_delivery,
)

DEVICES = [f"d{i}" for i in range(6)]
CLIENTS = [f"c{i}" for i in range(8)]


def _plan(seed=3, **rate_overrides):
    rates = FaultRates(
        partition=0.2,
        device_crash=0.15,
        uplink_loss=0.25,
        uplink_corrupt=0.1,
        uplink_duplicate=0.2,
        worker_fault=0.1,
        round_interrupt=0.3,
        **rate_overrides,
    )
    return FaultPlan.generate(
        seed, device_ids=DEVICES, client_ids=CLIENTS, n_windows=5, n_rounds=4, rates=rates
    )


# -- FaultPlan ------------------------------------------------------------


def test_generate_is_deterministic():
    a, b = _plan(seed=11), _plan(seed=11)
    assert a == b
    assert a.digest() == b.digest()


def test_different_seeds_differ():
    assert _plan(seed=1) != _plan(seed=2)
    assert _plan(seed=1).digest() != _plan(seed=2).digest()


def test_generate_populates_every_table():
    plan = _plan()
    assert plan.serve_offline and plan.crashes and plan.deliveries
    assert plan.shard_faults and plan.interrupts
    assert not plan.is_empty


def test_json_roundtrip_preserves_digest():
    plan = _plan(seed=7)
    restored = FaultPlan.from_json(plan.to_json())
    assert restored.digest() == plan.digest()
    assert restored.serve_offline == plan.serve_offline
    assert restored.deliveries == plan.deliveries
    assert restored.shard_faults == plan.shard_faults


def test_empty_plan():
    plan = FaultPlan.empty(seed=5)
    assert plan.is_empty
    assert plan.seed == 5
    # Content address ignores the rates object: empty is empty.
    assert FaultPlan.empty(seed=5).digest() == plan.digest()


def test_crashed_clients_never_schedule_deliveries():
    plan = _plan()
    crashed = set(plan.crashes)
    for r, cid, _ in plan.deliveries:
        assert (r, cid) not in crashed


def test_delivery_sequences_bounded_by_max_attempt_draws():
    plan = _plan()
    for _, _, outcomes in plan.deliveries:
        assert 1 <= len(outcomes) <= plan.rates.max_attempt_draws
        # Only the last outcome can be a success code.
        for o in outcomes[:-1]:
            assert o in (FaultKind.DELIVERY_LOST, FaultKind.DELIVERY_CORRUPT)


def test_rates_validation():
    with pytest.raises(ValueError):
        FaultRates(partition=1.5)
    with pytest.raises(ValueError):
        FaultRates(uplink_loss=0.7, uplink_corrupt=0.6)
    with pytest.raises(ValueError):
        FaultRates(max_attempt_draws=0)
    with pytest.raises(ValueError):
        FaultRates(worker_fault_modes=("nonsense",))


# -- RetryPolicy ----------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline_s=0.0)


def test_backoff_schedule_is_seeded_and_exponential():
    policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, multiplier=2.0, jitter=0.5)
    assert policy.schedule(seed=9) == policy.schedule(seed=9)
    assert policy.schedule(seed=9) != policy.schedule(seed=10)
    waits = policy.schedule(seed=9)
    assert len(waits) == 3
    for k, w in enumerate(waits):
        nominal = 1.0 * 2.0 ** k
        assert 0.5 * nominal <= w <= 1.5 * nominal


def test_zero_base_delay_means_zero_backoff():
    policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
    assert policy.schedule(seed=1) == (0.0, 0.0, 0.0, 0.0)


# -- simulate_delivery ----------------------------------------------------


def test_delivery_first_try():
    r = simulate_delivery((), RetryPolicy(), seed=0)
    assert r == DeliveryResult(True, 1, 0, 0, 0, 0.0)
    assert r.transmissions == 1


def test_delivery_retransmit_then_success():
    r = simulate_delivery(("lost", "ok"), RetryPolicy(max_attempts=3), seed=0)
    assert r.delivered and r.attempts == 2 and r.retransmits == 1
    assert r.transmissions == 2


def test_delivery_duplicate_counts_extra_transmission():
    r = simulate_delivery(("duplicate",), RetryPolicy(), seed=0)
    assert r.delivered and r.duplicates == 1 and r.transmissions == 2


def test_delivery_corrupt_is_counted_and_retried():
    r = simulate_delivery(("corrupt", "ok"), RetryPolicy(max_attempts=3), seed=0)
    assert r.delivered and r.corrupt == 1 and r.retransmits == 1


def test_delivery_attempts_exhausted():
    r = simulate_delivery(("lost", "lost"), RetryPolicy(max_attempts=2), seed=0)
    assert not r.delivered and r.reason == "attempts exhausted"
    assert r.attempts == 2


def test_exhausted_sequence_keeps_failing_beyond_recorded_attempts():
    # An all-failure sequence (no terminating success code) marks the
    # link down for the round: extra attempts keep failing.
    outcomes = ("lost",) * FaultRates().max_attempt_draws
    r = simulate_delivery(outcomes, RetryPolicy(max_attempts=10), seed=0)
    assert not r.delivered and r.attempts == 10
    # "Fail then recover" is encoded with an explicit success code.
    r2 = simulate_delivery(("lost", "ok"), RetryPolicy(max_attempts=3), seed=0)
    assert r2.delivered and r2.attempts == 2


def test_offline_transfer_fails_immediately():
    r = simulate_delivery((), RetryPolicy(), seed=0, transfer_time_s=math.inf)
    assert not r.delivered and r.reason == "offline" and r.attempts == 0


def test_deadline_budget_cuts_retries_short():
    policy = RetryPolicy(max_attempts=5, base_delay_s=10.0, jitter=0.0, deadline_s=15.0)
    r = simulate_delivery(("lost", "lost", "lost", "lost", "lost"), policy, seed=0)
    assert not r.delivered and r.reason == "deadline"
    assert r.attempts < 5


def test_deadline_on_transfer_time():
    policy = RetryPolicy(max_attempts=3, deadline_s=1.0)
    r = simulate_delivery((), policy, seed=0, transfer_time_s=2.0)
    assert not r.delivered and r.reason == "deadline" and r.attempts == 1


# -- FaultInjector --------------------------------------------------------


def test_filter_window_advances_and_passes_values_through():
    plan = FaultPlan(seed=0, serve_offline=((1, "d1"), (1, "d2")))
    inj = FaultInjector(plan)
    w0 = {"d1": np.ones((3, 2)), "d3": np.ones((1, 2))}
    kept, dropped = inj.filter_window(dict(w0))
    assert kept == w0 and dropped == {}
    w1 = {"d1": np.ones((3, 2)), "d2": np.ones((2, 2)), "d3": np.ones((1, 2))}
    kept, dropped = inj.filter_window(dict(w1))
    assert set(kept) == {"d3"} and set(dropped) == {"d1", "d2"}
    assert dropped["d1"] is w1["d1"]  # values untouched, not copied


def test_injector_reset_replays_from_the_top():
    plan = FaultPlan(seed=0, serve_offline=((0, "d0"),))
    inj = FaultInjector(plan)
    _, dropped = inj.filter_window({"d0": 1})
    assert dropped
    _, dropped = inj.filter_window({"d0": 1})
    assert not dropped
    inj.reset()
    _, dropped = inj.filter_window({"d0": 1})
    assert dropped


def test_crashed_clients_preserves_candidate_order():
    plan = FaultPlan(seed=0, crashes=((2, "c3"), (2, "c1")))
    inj = FaultInjector(plan)
    assert inj.crashed_clients(2, ["c1", "c2", "c3"]) == ["c1", "c3"]
    assert inj.crashed_clients(0, ["c1", "c2", "c3"]) == []


def test_delivery_outcomes_lookup():
    plan = FaultPlan(seed=0, deliveries=((1, "c0", ("lost", "ok")),))
    inj = FaultInjector(plan)
    assert inj.delivery_outcomes(1, "c0") == ("lost", "ok")
    assert inj.delivery_outcomes(1, "c1") == ()


def test_interrupts_fire_once():
    plan = FaultPlan(seed=0, interrupts=((3, 1),))
    inj = FaultInjector(plan)
    assert inj.interrupt_after(3) == 1
    inj.fire_interrupt(3)
    assert inj.interrupt_after(3) is None
    inj.reset()
    assert inj.interrupt_after(3) == 1


def test_dispatch_counters_are_per_scope():
    inj = FaultInjector(FaultPlan.empty())
    assert inj.next_dispatch("serve") == 0
    assert inj.next_dispatch("serve") == 1
    assert inj.next_dispatch("train") == 0


def test_shard_fault_lookup():
    plan = FaultPlan(seed=0, shard_faults=(("train", 1, 2, "raise"),))
    inj = FaultInjector(plan)
    assert inj.shard_fault("train", 1, 2) == "raise"
    assert inj.shard_fault("train", 0, 2) is None
    assert inj.shard_fault("serve", 1, 2) is None


def test_from_seed_builds_generated_plan():
    inj = FaultInjector.from_seed(
        4, device_ids=DEVICES, client_ids=CLIENTS, n_windows=3, n_rounds=2
    )
    assert inj.plan == FaultPlan.generate(
        4, device_ids=DEVICES, client_ids=CLIENTS, n_windows=3, n_rounds=2
    )
