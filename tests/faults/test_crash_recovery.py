"""Real process death, real resume: SIGKILL a coordinator, finish its run.

For every (engine, chaos seed) cell the suite launches
``_crash_harness.py`` as a child process that kills *itself* with SIGKILL
after the K-th checkpoint write, then launches a fresh child over the
same state directory and byte-compares its final weights, per-round
result dicts and ledger head MAC against an uninterrupted in-process
reference run.  No exception unwinding, no shared memory — if the resume
matches, the durability plane actually survives process death.

``REPRO_CHAOS_SEEDS`` (first four entries) overrides the seed matrix;
``REPRO_CHAOS_STATE_DIR`` roots the state directories (default: pytest
tmp dirs).
"""

import json
import os
import signal
import subprocess
import sys
import tempfile

import pytest

import _crash_harness
from repro.persist import canonical_json

_HARNESS = os.path.abspath(_crash_harness.__file__)
_REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(_HARNESS), "..", "..", "src")
)

KILL_AFTER_PUTS = 3


def _seeds():
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "")
    if raw.strip():
        return [int(tok) for tok in raw.split(",") if tok.strip()][:4]
    return [0, 1, 2, 3]


SEEDS = _seeds()
ENGINES = ["batched", "oracle", "sharded"]

# Every cell that actually observed its child die by SIGKILL records
# itself here; the suite-level test asserts the count is non-zero, so the
# "crash" in crash-recovery can never silently degrade to a clean exit.
_observed_kills = []


def _state_root():
    root = os.environ.get("REPRO_CHAOS_STATE_DIR")
    if root:
        os.makedirs(root, exist_ok=True)
        return root
    return None


def _spawn(seed, engine, state_dir, out, kill_after=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_REPO_SRC, env.get("PYTHONPATH", "")) if p
    )
    return subprocess.run(
        [
            sys.executable,
            _HARNESS,
            "--seed", str(seed),
            "--engine", engine,
            "--state-dir", state_dir,
            "--out", out,
            "--kill-after-puts", str(kill_after),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture(scope="module")
def references():
    """Uninterrupted fingerprints, computed once per (engine, seed) in
    this process and normalized through JSON (tuples become lists, as in
    the children's output files)."""
    cache = {}

    def get(seed, engine):
        if (seed, engine) not in cache:
            cache[(seed, engine)] = json.loads(
                canonical_json(_crash_harness.run_world(seed, engine))
            )
        return cache[(seed, engine)]

    return get


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_sigkill_then_resume_is_byte_identical(seed, engine, references, tmp_path):
    root = _state_root()
    base = tempfile.mkdtemp(prefix=f"crash-{engine}-{seed}-", dir=root) if root else str(tmp_path)
    state_dir = os.path.join(base, "state")
    out = os.path.join(base, "out.json")

    killed = _spawn(seed, engine, state_dir, out, kill_after=KILL_AFTER_PUTS)
    assert killed.returncode == -signal.SIGKILL, (
        f"child should die by SIGKILL, got rc={killed.returncode}\n"
        f"stdout={killed.stdout}\nstderr={killed.stderr}"
    )
    assert not os.path.exists(out), "a killed child must not have produced output"
    assert os.path.isdir(state_dir), "the kill must happen after state hit the disk"
    _observed_kills.append((seed, engine))

    resumed = _spawn(seed, engine, state_dir, out)
    assert resumed.returncode == 0, f"resume failed:\n{resumed.stderr}"
    output = json.loads(open(out).read())
    assert output["resumed_round"] is not None, "the fresh process must actually resume"

    reference = references(seed, engine)
    assert output["weights_hex"] == reference["weights_hex"]
    assert output["results"] == reference["results"]
    assert output["ledger_head_mac"] == reference["ledger_head_mac"]
    assert output["ledger_used"] == reference["ledger_used"]
    assert output["ledger_chain_ok"] is True


def test_uninterrupted_durable_run_matches_no_store_run(references, tmp_path):
    """The durable plane is observationally inert when nothing crashes."""
    seed, engine = SEEDS[0], "batched"
    durable = json.loads(
        canonical_json(
            _crash_harness.run_world(seed, engine, state_dir=str(tmp_path / "state"))
        )
    )
    reference = references(seed, engine)
    assert durable["weights_hex"] == reference["weights_hex"]
    assert durable["results"] == reference["results"]
    assert durable["ledger_head_mac"] == reference["ledger_head_mac"]


def test_zzz_at_least_one_real_kill_happened():
    """Suite-level guard (runs last by name): the matrix above must have
    observed at least one genuine SIGKILL death, else the crash tests
    proved nothing."""
    assert len(_observed_kills) >= 1
