"""Subprocess harness for the crash-recovery suite: run, die, resume.

Invoked by ``tests/faults/test_crash_recovery.py`` as a child process::

    python _crash_harness.py --seed 3 --engine batched --state-dir DIR \
        --out OUT.json [--kill-after-puts K]

Runs a chaos federated world for ``N_ROUNDS`` against a
:class:`DurableCheckpointStore` in ``--state-dir``.  With
``--kill-after-puts K`` the process SIGKILLs *itself* immediately after
the K-th checkpoint hits the disk — a real process death, no exception
unwinding, no atexit.  Re-invoking without the flag resumes from the
persisted state: the latest commit record anchors the weights, scheduler
RNG stream and finished rounds; an in-flight checkpoint resumes the
interrupted round; persisted ledger segments replay through
``append_segment`` (re-verifying every MAC).  On completion the harness
writes a JSON fingerprint (weights bytes, per-round result dicts, ledger
head MAC) that the parent byte-compares against an uninterrupted run.

Also importable: the test computes reference fingerprints by calling
:func:`run_world` in-process with ``state_dir=None``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "runtime"))

from _sharded_worlds import federated_world  # noqa: E402

from repro.billing import BillingBackend, PricingPlan, UsageLedger  # noqa: E402
from repro.faults import (  # noqa: E402
    DurableCheckpointStore,
    FaultInjector,
    FaultPlan,
    FaultRates,
    RoundInterrupted,
)

N_CLIENTS = 10
N_ROUNDS = 3
CHAOS_RATES = FaultRates(
    partition=0.0,
    device_crash=0.08,
    uplink_loss=0.15,
    uplink_corrupt=0.05,
    uplink_duplicate=0.05,
    worker_fault=0.0,
    round_interrupt=0.5,
)


class _KillingStore(DurableCheckpointStore):
    """SIGKILL the process right after the N-th checkpoint put commits.

    The put has fully flushed (payload fsynced, manifest replaced) before
    the signal, so the disk holds exactly a committed prefix of the run —
    the honest model of a coordinator dying between (not during) writes;
    torn writes are covered by the corruption suite.
    """

    def __init__(self, root, kill_after_puts):
        super().__init__(root)
        self._kill_after = int(kill_after_puts)
        self._n_puts = 0

    def put(self, checkpoint):
        digest = super().put(checkpoint)
        self._n_puts += 1
        if self._n_puts >= self._kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return digest


def _ledger(seed: int) -> UsageLedger:
    """A deterministically-keyed metered device (same in every process)."""
    billing = BillingBackend(master_key=b"crash-harness-master")
    billing.register_plan(PricingPlan(model_name="m"))
    key = billing.enroll_device("dev-0")
    ledger = UsageLedger("dev-0", key)
    ledger.add_grant(
        billing.sell_package("dev-0", "m", 10_000), backend_key=billing.signing_key()
    )
    return ledger


def run_world(seed: int, engine: str, state_dir=None, kill_after_puts=None):
    """Run (or resume) the chaos world; return its output fingerprint."""
    fed = federated_world(seed, N_CLIENTS)
    if engine == "sharded":
        from repro.runtime.sharded import ShardedFleetRunner

        fed.shard_runner = ShardedFleetRunner(workers=2, backend="inline")

    store = None
    resumed_round = None
    if state_dir is not None:
        if kill_after_puts:
            store = _KillingStore(state_dir, kill_after_puts)
        else:
            store = DurableCheckpointStore(state_dir)
        fed.checkpoints = store

    # The plan travels with the state dir: the resuming process replays
    # the exact persisted plan (digest re-verified), not a regeneration.
    plan = store.load_plan() if store is not None else None
    if plan is None:
        plan = FaultPlan.generate(
            seed + 1000,
            client_ids=sorted(fed.clients),
            n_rounds=N_ROUNDS,
            rates=CHAOS_RATES,
        )
        if store is not None:
            store.put_plan(plan)
    fed.fault_injector = FaultInjector(plan)

    ledger = _ledger(seed)
    start_round = 0
    if store is not None:
        commit = store.latest_commit()
        if commit is not None:
            fed.global_model.set_flat_weights(commit["weights"])
            fed._restore_scheduler_rng(commit["scheduler_state"])
            start_round = int(commit["round_index"]) + 1
            resumed_round = start_round
        elif len(store):
            resumed_round = 0
        for _, segments in store.iter_ledger_segments():
            for device_id, entries in segments.items():
                assert device_id == "dev-0"
                ledger.append_segment(entries)  # re-verifies every MAC

    for r in range(start_round, N_ROUNDS):
        while True:
            try:
                fed.run_round(r, engine=engine)
                break
            except RoundInterrupted:
                # In-process coordinator interrupt: immediately resume.
                continue
        base = len(ledger.entries)
        ledger.record_batch("m", 3 + r)
        if store is not None:
            store.put_ledger_segments(f"round-{r}", {"dev-0": ledger.export_segment(base)})

    results = (
        [c["result"] for c in store.commits()]
        if store is not None
        else [res.as_dict() for res in fed.history]
    )
    return {
        "seed": seed,
        "engine": engine,
        "resumed_round": resumed_round,
        "weights_hex": fed.global_model.get_flat_weights().tobytes().hex(),
        "results": results,
        "ledger_head_mac": ledger.head_mac(),
        "ledger_used": ledger.used("m"),
        "ledger_chain_ok": bool(ledger.verify_chain()),
    }


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--engine", required=True, choices=["batched", "oracle", "sharded"])
    parser.add_argument("--state-dir", required=True)
    parser.add_argument("--out", required=True)
    parser.add_argument("--kill-after-puts", type=int, default=0)
    args = parser.parse_args()
    output = run_world(
        args.seed,
        args.engine,
        state_dir=args.state_dir,
        kill_after_puts=args.kill_after_puts or None,
    )
    # canonical_json handles any numpy scalars left in result dicts.
    from repro.persist import canonical_json

    with open(args.out, "wb") as fh:
        fh.write(canonical_json(output))


if __name__ == "__main__":
    main()
