"""Tests for the artifact store, model registry, lineage and pipeline triggers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import make_mlp
from repro.registry import (
    ArtifactStore,
    ModelRegistry,
    OptimizationPipeline,
    TriggerManager,
    VariantRecipe,
)


class TestArtifactStore:
    def test_put_get_roundtrip(self):
        store = ArtifactStore()
        record = store.put(b"hello", kind="blob", name="greeting")
        assert store.get(record.digest) == b"hello"
        assert record.size_bytes == 5

    def test_deduplication(self):
        store = ArtifactStore()
        a = store.put(b"same")
        b = store.put(b"same")
        assert a.digest == b.digest and len(store) == 1

    def test_object_roundtrip(self):
        store = ArtifactStore()
        record = store.put_object({"a": 1})
        assert store.get_object(record.digest) == {"a": 1}

    def test_missing_digest(self):
        with pytest.raises(KeyError):
            ArtifactStore().get("0" * 64)

    def test_verify_integrity(self):
        store = ArtifactStore()
        record = store.put(b"data")
        assert store.verify(record.digest)
        assert not store.verify("0" * 64)

    def test_disk_persistence(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        record = store.put(b"persisted")
        fresh = ArtifactStore(root=str(tmp_path))
        assert fresh.get(record.digest) == b"persisted"

    def test_type_check(self):
        with pytest.raises(TypeError):
            ArtifactStore().put("not-bytes")  # type: ignore[arg-type]


class TestModelRegistry:
    def test_register_and_load_model(self, trained_mlp, blobs):
        _, test = blobs
        registry = ModelRegistry()
        version = registry.register_model(trained_mlp)
        loaded = registry.load_model(version.version_id)
        np.testing.assert_allclose(loaded.forward(test.x[:4]), trained_mlp.forward(test.x[:4]))

    def test_version_ids_increment(self, trained_mlp):
        registry = ModelRegistry()
        v1 = registry.register_model(trained_mlp)
        v2 = registry.register_model(trained_mlp)
        assert v1.version_id.endswith(":1") and v2.version_id.endswith(":2")

    def test_lineage_queries(self, trained_mlp):
        registry = ModelRegistry()
        base = registry.register_model(trained_mlp)
        child = registry.register_model(trained_mlp, kind="quantized", parents=(base.version_id,))
        grandchild = registry.register_model(trained_mlp, kind="watermarked", parents=(child.version_id,))
        descendants = {v.version_id for v in registry.derived_from(base.version_id)}
        assert descendants == {child.version_id, grandchild.version_id}
        ancestors = {v.version_id for v in registry.ancestry(grandchild.version_id)}
        assert ancestors == {base.version_id, child.version_id}

    def test_unknown_parent_rejected(self, trained_mlp):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.register_model(trained_mlp, parents=("ghost:1",))

    def test_latest_and_kind_filter(self, trained_mlp):
        registry = ModelRegistry()
        base = registry.register_model(trained_mlp)
        registry.register_model(trained_mlp, kind="quantized", parents=(base.version_id,))
        assert registry.latest(trained_mlp.name, kind="base").version_id == base.version_id

    def test_find_by_tag(self, trained_mlp):
        registry = ModelRegistry()
        registry.register_model(trained_mlp, tags={"bits": 8})
        registry.register_model(trained_mlp, tags={"bits": 4})
        assert len(registry.find_by_tag(bits=8)) == 1

    def test_deployments(self, trained_mlp):
        registry = ModelRegistry()
        v = registry.register_model(trained_mlp)
        registry.record_deployment("dev-1", v.version_id)
        registry.record_deployment("dev-2", v.version_id)
        assert registry.devices_running(v.version_id) == ["dev-1", "dev-2"]
        assert registry.deployment_histogram(trained_mlp.name) == {v.version_id: 2}
        assert registry.deployed_version("dev-1", trained_mlp.name) == v.version_id

    def test_stale_variants_after_retrain(self, trained_mlp):
        registry = ModelRegistry()
        base1 = registry.register_model(trained_mlp)
        derived = registry.register_model(trained_mlp, kind="quantized", parents=(base1.version_id,))
        registry.register_model(trained_mlp)  # new base (retrained)
        stale = registry.stale_variants(trained_mlp.name)
        assert [v.version_id for v in stale] == [derived.version_id]

    def test_stats(self, trained_mlp):
        registry = ModelRegistry()
        registry.register_model(trained_mlp)
        stats = registry.stats()
        assert stats["n_versions"] == 1 and stats["n_models"] == 1


class TestTriggers:
    def test_standard_pipeline_generates_variants(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)
        manager.subscribe(trained_mlp.name, OptimizationPipeline.standard(bit_widths=(8, 4), sparsities=(0.5,)))
        base, derived = manager.register_and_trigger(trained_mlp)
        assert len(derived) == 3
        kinds = {v.kind for v in derived}
        assert kinds == {"quantized", "pruned"}
        for v in derived:
            assert v.parents == (base.version_id,)

    def test_trigger_without_subscription_is_noop(self, trained_mlp):
        manager = TriggerManager(ModelRegistry())
        base, derived = manager.register_and_trigger(trained_mlp)
        assert derived == []

    def test_custom_recipe(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)

        def builder(model):
            return model.to_bytes(), {"note": "identity"}

        manager.subscribe(trained_mlp.name, OptimizationPipeline("custom", [VariantRecipe("copy", "mirrored", builder)]))
        _, derived = manager.register_and_trigger(trained_mlp)
        assert derived[0].kind == "mirrored" and derived[0].tags["recipe"] == "copy"

    def test_retrain_retriggers_and_marks_stale(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)
        manager.subscribe(trained_mlp.name, OptimizationPipeline.standard(bit_widths=(8,), sparsities=()))
        manager.register_and_trigger(trained_mlp)
        retrained = trained_mlp.clone(copy_weights=True)
        retrained.layers[0].params["W"] += 0.01
        manager.register_and_trigger(retrained)
        assert len(registry.stale_variants(trained_mlp.name)) == 1
        assert len(manager.trigger_log) == 2

    def test_on_base_registered_requires_base(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)
        base = registry.register_model(trained_mlp)
        derived = registry.register_model(trained_mlp, kind="quantized", parents=(base.version_id,))
        with pytest.raises(ValueError):
            manager.on_base_registered(derived)
