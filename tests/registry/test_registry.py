"""Tests for the artifact store, model registry, lineage and pipeline triggers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import make_mlp
from repro.registry import (
    ArtifactStore,
    ModelRegistry,
    OptimizationPipeline,
    TriggerManager,
    VariantRecipe,
)


class TestArtifactStore:
    def test_put_get_roundtrip(self):
        store = ArtifactStore()
        record = store.put(b"hello", kind="blob", name="greeting")
        assert store.get(record.digest) == b"hello"
        assert record.size_bytes == 5

    def test_deduplication(self):
        store = ArtifactStore()
        a = store.put(b"same")
        b = store.put(b"same")
        assert a.digest == b.digest and len(store) == 1

    def test_object_roundtrip(self):
        store = ArtifactStore()
        record = store.put_object({"a": 1})
        assert store.get_object(record.digest) == {"a": 1}

    def test_missing_digest(self):
        with pytest.raises(KeyError):
            ArtifactStore().get("0" * 64)

    def test_verify_integrity(self):
        store = ArtifactStore()
        record = store.put(b"data")
        assert store.verify(record.digest)
        assert not store.verify("0" * 64)

    def test_disk_persistence(self, tmp_path):
        store = ArtifactStore(root=str(tmp_path))
        record = store.put(b"persisted")
        fresh = ArtifactStore(root=str(tmp_path))
        assert fresh.get(record.digest) == b"persisted"

    def test_type_check(self):
        with pytest.raises(TypeError):
            ArtifactStore().put("not-bytes")  # type: ignore[arg-type]

    def test_collision_preserves_second_name_as_alias(self):
        # Regression: identical bytes under a different name used to return
        # the first record unchanged, silently dropping the second identity.
        store = ArtifactStore()
        store.put(b"same-bytes", kind="blob", name="first")
        record = store.put(b"same-bytes", kind="blob", name="second")
        assert record.name == "first"
        assert record.names() == ("first", "second")
        assert store.record(record.digest).aliases == ("second",)
        assert len(store) == 1

    def test_collision_with_conflicting_kind_raises(self):
        store = ArtifactStore()
        store.put(b"payload", kind="model")
        with pytest.raises(ValueError, match="kind"):
            store.put(b"payload", kind="calibration-batch")

    def test_collision_merges_metadata(self):
        store = ArtifactStore()
        store.put(b"payload", kind="blob", metadata={"bits": 8, "origin": "ci"})
        record = store.put(b"payload", kind="blob", metadata={"bits": 4, "owner": "acme"})
        meta = record.meta()
        assert meta["origin"] == "ci"  # untouched key survives
        assert meta["owner"] == "acme"  # new key merges in
        assert meta["bits"] == (8, 4)  # conflict accumulates distinct values in put order

    def test_collision_identical_metadata_is_stable(self):
        store = ArtifactStore()
        first = store.put(b"payload", kind="blob", name="n", metadata={"bits": 8})
        second = store.put(b"payload", kind="blob", name="n", metadata={"bits": 8})
        assert first == second


class TestModelRegistry:
    def test_register_and_load_model(self, trained_mlp, blobs):
        _, test = blobs
        registry = ModelRegistry()
        version = registry.register_model(trained_mlp)
        loaded = registry.load_model(version.version_id)
        np.testing.assert_allclose(loaded.forward(test.x[:4]), trained_mlp.forward(test.x[:4]))

    def test_version_ids_increment(self, trained_mlp):
        registry = ModelRegistry()
        v1 = registry.register_model(trained_mlp)
        v2 = registry.register_model(trained_mlp)
        assert v1.version_id.endswith(":1") and v2.version_id.endswith(":2")

    def test_lineage_queries(self, trained_mlp):
        registry = ModelRegistry()
        base = registry.register_model(trained_mlp)
        child = registry.register_model(trained_mlp, kind="quantized", parents=(base.version_id,))
        grandchild = registry.register_model(trained_mlp, kind="watermarked", parents=(child.version_id,))
        descendants = {v.version_id for v in registry.derived_from(base.version_id)}
        assert descendants == {child.version_id, grandchild.version_id}
        ancestors = {v.version_id for v in registry.ancestry(grandchild.version_id)}
        assert ancestors == {base.version_id, child.version_id}

    def test_unknown_parent_rejected(self, trained_mlp):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.register_model(trained_mlp, parents=("ghost:1",))

    def test_latest_and_kind_filter(self, trained_mlp):
        registry = ModelRegistry()
        base = registry.register_model(trained_mlp)
        registry.register_model(trained_mlp, kind="quantized", parents=(base.version_id,))
        assert registry.latest(trained_mlp.name, kind="base").version_id == base.version_id

    def test_find_by_tag(self, trained_mlp):
        registry = ModelRegistry()
        registry.register_model(trained_mlp, tags={"bits": 8})
        registry.register_model(trained_mlp, tags={"bits": 4})
        assert len(registry.find_by_tag(bits=8)) == 1

    def test_deployments(self, trained_mlp):
        registry = ModelRegistry()
        v = registry.register_model(trained_mlp)
        registry.record_deployment("dev-1", v.version_id)
        registry.record_deployment("dev-2", v.version_id)
        assert registry.devices_running(v.version_id) == ["dev-1", "dev-2"]
        assert registry.deployment_histogram(trained_mlp.name) == {v.version_id: 2}
        assert registry.deployed_version("dev-1", trained_mlp.name) == v.version_id

    def test_stale_variants_after_retrain(self, trained_mlp):
        registry = ModelRegistry()
        base1 = registry.register_model(trained_mlp)
        derived = registry.register_model(trained_mlp, kind="quantized", parents=(base1.version_id,))
        registry.register_model(trained_mlp)  # new base (retrained)
        stale = registry.stale_variants(trained_mlp.name)
        assert [v.version_id for v in stale] == [derived.version_id]

    def test_stats(self, trained_mlp):
        registry = ModelRegistry()
        registry.register_model(trained_mlp)
        stats = registry.stats()
        assert stats["n_versions"] == 1 and stats["n_models"] == 1

    def test_stale_cleared_by_rederived_equivalent(self, trained_mlp):
        # Regression: staleness used to be filtered by version id, which a
        # re-derived variant never shares — so re-running the pipeline could
        # never clear it.  Equivalence is (kind, recipe, pipeline) identity.
        registry = ModelRegistry()
        base1 = registry.register_model(trained_mlp)
        registry.register_model(
            trained_mlp, kind="quantized", parents=(base1.version_id,),
            tags={"recipe": "quant-8bit", "pipeline": "standard"},
        )
        base2 = registry.register_model(trained_mlp)
        assert len(registry.stale_variants(trained_mlp.name)) == 1
        registry.register_model(
            trained_mlp, kind="quantized", parents=(base2.version_id,),
            tags={"recipe": "quant-8bit", "pipeline": "standard"},
        )
        assert registry.stale_variants(trained_mlp.name) == []

    def test_stale_requires_matching_recipe(self, trained_mlp):
        # A *different* recipe derived from the new base does not clear the
        # old one's staleness.
        registry = ModelRegistry()
        base1 = registry.register_model(trained_mlp)
        old = registry.register_model(
            trained_mlp, kind="quantized", parents=(base1.version_id,),
            tags={"recipe": "quant-8bit", "pipeline": "standard"},
        )
        base2 = registry.register_model(trained_mlp)
        registry.register_model(
            trained_mlp, kind="quantized", parents=(base2.version_id,),
            tags={"recipe": "quant-4bit", "pipeline": "standard"},
        )
        stale = registry.stale_variants(trained_mlp.name)
        assert [v.version_id for v in stale] == [old.version_id]

    def test_stale_dedup_across_multiple_old_bases(self, trained_mlp):
        # A variant chain reachable from several old bases is reported once.
        registry = ModelRegistry()
        base1 = registry.register_model(trained_mlp)
        derived = registry.register_model(
            trained_mlp, kind="quantized", parents=(base1.version_id,),
            tags={"recipe": "quant-8bit"},
        )
        registry.register_model(trained_mlp, parents=(base1.version_id,))  # base2, child of base1
        registry.register_model(trained_mlp)  # base3 (latest)
        stale = registry.stale_variants(trained_mlp.name)
        assert [v.version_id for v in stale] == [derived.version_id]

    def test_flip_deployments_returns_previous_map(self, trained_mlp):
        registry = ModelRegistry()
        v1 = registry.register_model(trained_mlp)
        v2 = registry.register_model(trained_mlp)
        registry.record_deployment("dev-1", v1.version_id)
        previous = registry.flip_deployments(["dev-1", "dev-2"], v2.version_id)
        assert previous == {"dev-1": v1.version_id, "dev-2": None}
        assert registry.deployed_version("dev-1", trained_mlp.name) == v2.version_id
        assert registry.deployed_version("dev-2", trained_mlp.name) == v2.version_id

    def test_promote_retires_previous_production(self, trained_mlp):
        registry = ModelRegistry()
        v1 = registry.register_model(trained_mlp)
        v2 = registry.register_model(trained_mlp)
        assert registry.production(trained_mlp.name) is None
        registry.promote(v1.version_id)
        assert registry.production(trained_mlp.name).version_id == v1.version_id
        registry.promote(v2.version_id)
        assert registry.production(trained_mlp.name).version_id == v2.version_id
        assert registry.get(v1.version_id).tags["stage"] == "retired"


class TestTriggers:
    def test_standard_pipeline_generates_variants(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)
        manager.subscribe(trained_mlp.name, OptimizationPipeline.standard(bit_widths=(8, 4), sparsities=(0.5,)))
        base, derived = manager.register_and_trigger(trained_mlp)
        assert len(derived) == 3
        kinds = {v.kind for v in derived}
        assert kinds == {"quantized", "pruned"}
        for v in derived:
            assert v.parents == (base.version_id,)

    def test_trigger_without_subscription_is_noop(self, trained_mlp):
        manager = TriggerManager(ModelRegistry())
        base, derived = manager.register_and_trigger(trained_mlp)
        assert derived == []

    def test_custom_recipe(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)

        def builder(model):
            return model.to_bytes(), {"note": "identity"}

        manager.subscribe(trained_mlp.name, OptimizationPipeline("custom", [VariantRecipe("copy", "mirrored", builder)]))
        _, derived = manager.register_and_trigger(trained_mlp)
        assert derived[0].kind == "mirrored" and derived[0].tags["recipe"] == "copy"

    def test_retrain_retriggers_and_marks_stale(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)
        manager.subscribe(trained_mlp.name, OptimizationPipeline.standard(bit_widths=(8,), sparsities=()))
        manager.register_and_trigger(trained_mlp)
        retrained = trained_mlp.clone(copy_weights=True)
        retrained.layers[0].params["W"] += 0.01
        # Registering the retrained base alone leaves the old variant stale...
        base2 = registry.register_model(retrained)
        assert len(registry.stale_variants(trained_mlp.name)) == 1
        # ...and re-running the pipeline from the new base clears it.
        derived = manager.on_base_registered(base2)
        assert len(derived) == 1
        assert registry.stale_variants(trained_mlp.name) == []
        assert len(manager.trigger_log) == 2

    def test_trigger_log_records_no_pipeline_events(self, trained_mlp):
        # Regression: the no-subscription early return used to skip the
        # trigger log, so lifecycle audits missed those triggers entirely.
        registry = ModelRegistry()
        manager = TriggerManager(registry)
        base = registry.register_model(trained_mlp)
        assert manager.on_base_registered(base) == []
        assert manager.trigger_log == [
            {"base": base.version_id, "n_derived": 0, "pipelines": []}
        ]

    def test_on_base_registered_requires_base(self, trained_mlp):
        registry = ModelRegistry()
        manager = TriggerManager(registry)
        base = registry.register_model(trained_mlp)
        derived = registry.register_model(trained_mlp, kind="quantized", parents=(base.version_id,))
        with pytest.raises(ValueError):
            manager.on_base_registered(derived)
