"""Tests for synthetic datasets, drift injection and federated partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DriftingStream,
    DriftSpec,
    add_label_noise,
    concept_shift,
    covariate_shift,
    drop_labels,
    make_gaussian_blobs,
    make_keyword_spectrograms,
    make_regression,
    make_sensor_windows,
    make_synthetic_digits,
    make_two_moons,
    partition_dirichlet,
    partition_iid,
    partition_shards,
    partition_statistics,
    prior_shift,
    train_test_split,
)


class TestGenerators:
    def test_blobs_shapes_and_determinism(self):
        a = make_gaussian_blobs(200, 8, 3, seed=5)
        b = make_gaussian_blobs(200, 8, 3, seed=5)
        assert a.x.shape == (200, 8) and a.num_classes == 3
        np.testing.assert_allclose(a.x, b.x)

    def test_blobs_are_learnable(self):
        from repro.nn import make_mlp

        ds = make_gaussian_blobs(600, 10, 3, cluster_std=0.5, seed=0)
        train, test = ds.split(0.25, seed=0)
        model = make_mlp(10, 3, hidden=(16,), seed=0)
        model.fit(train.x, train.y, epochs=6, lr=0.02)
        assert model.evaluate(test.x, test.y)["accuracy"] > 0.9

    def test_two_moons_binary(self):
        ds = make_two_moons(300, seed=1)
        assert set(np.unique(ds.y)) == {0, 1}
        assert ds.x.shape == (300, 2)

    def test_digits_shapes(self):
        ds = make_synthetic_digits(100, image_size=10, seed=2)
        assert ds.x.shape == (100, 10, 10, 1)
        flat = make_synthetic_digits(100, image_size=10, seed=2, flat=True)
        assert flat.x.shape == (100, 100)

    def test_digits_num_classes_bounds(self):
        with pytest.raises(ValueError):
            make_synthetic_digits(10, num_classes=11)

    def test_digit_classes_are_distinguishable(self):
        ds = make_synthetic_digits(600, image_size=12, noise=0.2, num_classes=4, seed=0, flat=True)
        # Per-class mean images should be far apart relative to the noise.
        means = np.stack([ds.x[ds.y == c].mean(axis=0) for c in range(4)])
        dists = np.linalg.norm(means[:, None, :] - means[None, :, :], axis=-1)
        off_diag = dists[~np.eye(4, dtype=bool)]
        assert off_diag.min() > 1.0

    def test_keyword_spectrograms(self):
        ds = make_keyword_spectrograms(80, n_mels=12, n_frames=10, num_keywords=3, seed=1)
        assert ds.x.shape == (80, 12, 10, 1)
        assert ds.num_classes == 3

    def test_sensor_windows_anomaly_rate(self):
        ds = make_sensor_windows(1000, anomaly_fraction=0.1, seed=0)
        rate = ds.y.mean()
        assert 0.05 < rate < 0.15

    def test_regression_shapes(self):
        x, y = make_regression(50, 6, seed=0)
        assert x.shape == (50, 6) and y.shape == (50, 1)

    def test_split_fractions(self):
        ds = make_gaussian_blobs(100, 4, 2, seed=0)
        train, test = ds.split(0.2, seed=0)
        assert len(test) == 20 and len(train) == 80

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((10, 2)), np.zeros(10), test_fraction=1.5)

    def test_subset(self):
        ds = make_gaussian_blobs(50, 4, 2, seed=0)
        sub = ds.subset(np.arange(10))
        assert len(sub) == 10 and sub.num_classes == 2


class TestDrift:
    def test_covariate_shift_moves_mean(self, rng):
        x = rng.normal(size=(500, 6))
        shifted = covariate_shift(x, magnitude=3.0, seed=1)
        assert np.linalg.norm(shifted.mean(axis=0) - x.mean(axis=0)) > 1.0

    def test_concept_shift_changes_labels(self, rng):
        y = rng.integers(0, 4, size=200)
        flipped = concept_shift(y, 4, fraction=1.0, seed=0)
        assert np.mean(flipped != y) > 0.5

    def test_concept_shift_partial(self, rng):
        y = rng.integers(0, 4, size=1000)
        flipped = concept_shift(y, 4, fraction=0.1, seed=0)
        assert 0.02 < np.mean(flipped != y) < 0.2

    def test_prior_shift_changes_class_balance(self):
        ds = make_gaussian_blobs(600, 4, 3, seed=0)
        shifted = prior_shift(ds, np.array([0.8, 0.1, 0.1]), 500, seed=1)
        counts = np.bincount(shifted.y, minlength=3) / 500
        assert counts[0] > 0.6

    def test_prior_shift_validates_weights(self):
        ds = make_gaussian_blobs(100, 4, 3, seed=0)
        with pytest.raises(ValueError):
            prior_shift(ds, np.array([1.0, 1.0]), 50)

    def test_drift_spec_ramp(self):
        spec = DriftSpec(start=10, magnitude=2.0, ramp=4)
        assert spec.severity_at(5) == 0.0
        assert spec.severity_at(10) == pytest.approx(0.5)
        assert spec.severity_at(13) == pytest.approx(2.0)
        assert spec.severity_at(100) == pytest.approx(2.0)

    def test_stream_marks_drifted_batches(self):
        ds = make_gaussian_blobs(500, 6, 3, seed=0)
        stream = DriftingStream(ds, batch_size=32, specs=[DriftSpec(start=5, magnitude=1.0)], seed=0)
        flags = [drifted for _, _, drifted in stream.batches(10)]
        assert flags[:5] == [False] * 5
        assert all(flags[5:])
        assert stream.first_drift_batch() == 5

    def test_stream_unknown_kind(self):
        ds = make_gaussian_blobs(100, 4, 2, seed=0)
        with pytest.raises(ValueError):
            DriftingStream(ds, specs=[DriftSpec(start=0, kind="weird")])


class TestFederatedPartitioning:
    def test_iid_partition_sizes(self):
        ds = make_gaussian_blobs(1000, 6, 4, seed=0)
        clients = partition_iid(ds, 10, seed=0)
        sizes = [len(c) for c in clients]
        assert sum(sizes) == 1000
        assert max(sizes) - min(sizes) <= 1

    def test_dirichlet_more_skewed_with_small_alpha(self):
        ds = make_gaussian_blobs(2000, 6, 5, seed=0)
        skewed = partition_dirichlet(ds, 10, alpha=0.1, seed=1)
        uniform = partition_dirichlet(ds, 10, alpha=100.0, seed=1)
        s_stats = partition_statistics(skewed, 5)
        u_stats = partition_statistics(uniform, 5)
        assert s_stats["mean_tv_distance"] > u_stats["mean_tv_distance"]

    def test_dirichlet_covers_all_samples_at_most_once(self):
        ds = make_gaussian_blobs(500, 4, 3, seed=0)
        clients = partition_dirichlet(ds, 5, alpha=0.5, seed=0)
        total = sum(c.x.shape[0] for c in clients)
        assert total == 500

    def test_shards_partition_label_concentration(self):
        ds = make_gaussian_blobs(1000, 4, 10, seed=0)
        clients = partition_shards(ds, 10, shards_per_client=2, seed=0)
        # Each client sees at most ~2-3 distinct labels with shard splitting.
        distinct = [len(np.unique(c.y)) for c in clients]
        assert max(distinct) <= 4

    def test_label_noise(self):
        ds = make_gaussian_blobs(400, 4, 4, seed=0)
        client = partition_iid(ds, 2, seed=0)[0]
        noisy = add_label_noise(client, 0.5, 4, seed=0)
        assert 0.25 < np.mean(noisy.y != client.y) < 0.6

    def test_drop_labels_moves_samples(self):
        ds = make_gaussian_blobs(400, 4, 4, seed=0)
        client = partition_iid(ds, 2, seed=0)[0]
        semi = drop_labels(client, 0.5, seed=0)
        assert semi.x_unlabeled is not None
        assert semi.x.shape[0] + semi.x_unlabeled.shape[0] == client.x.shape[0]

    def test_partition_statistics_keys(self):
        ds = make_gaussian_blobs(300, 4, 3, seed=0)
        stats = partition_statistics(partition_iid(ds, 3, seed=0), 3)
        assert set(stats) == {"mean_tv_distance", "max_tv_distance", "size_imbalance", "n_clients"}

    def test_invalid_client_count(self):
        ds = make_gaussian_blobs(100, 4, 2, seed=0)
        with pytest.raises(ValueError):
            partition_iid(ds, 0)
