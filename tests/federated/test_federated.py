"""Tests for federated clients, aggregation, compression and scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import drop_labels, make_gaussian_blobs, partition_dirichlet, partition_iid
from repro.federated import (
    ClientUpdate,
    EligibilityScheduler,
    EnergyAwareScheduler,
    FedAdamAggregator,
    FedAvgAggregator,
    FederatedClient,
    FederatedServer,
    NoCompression,
    QuantizedCompressor,
    RandomScheduler,
    SecureAggregator,
    SignSGDCompressor,
    TernaryCompressor,
    TopKSparsifier,
    TrimmedMeanAggregator,
    centralized_baseline,
    get_compressor,
)
from repro.nn import make_mlp


@pytest.fixture(scope="module")
def fl_setup():
    ds = make_gaussian_blobs(1200, 10, 4, seed=11)
    train, test = ds.split(0.3, seed=11)
    clients_data = partition_dirichlet(train, 8, alpha=0.5, seed=11)
    clients = [FederatedClient(cd, local_epochs=2, lr=0.05, seed=i) for i, cd in enumerate(clients_data)]
    return train, test, clients


class TestCompression:
    @pytest.mark.parametrize("name,kwargs", [("none", {}), ("topk", {"fraction": 0.1}), ("signsgd", {}), ("ternary", {}), ("quantized", {"bits": 8})])
    def test_roundtrip_shapes(self, name, kwargs, rng):
        comp = get_compressor(name, **kwargs)
        update = rng.normal(size=1000)
        decoded, compressed = comp.roundtrip(update)
        assert decoded.shape == update.shape
        assert compressed.nbytes > 0

    def test_topk_keeps_largest(self, rng):
        update = rng.normal(size=500)
        decoded, compressed = TopKSparsifier(0.1).roundtrip(update)
        kept = np.flatnonzero(decoded)
        assert kept.size == 50
        threshold = np.sort(np.abs(update))[-50]
        assert np.all(np.abs(update[kept]) >= threshold - 1e-12)

    def test_compression_ratios_ordering(self, rng):
        update = rng.normal(size=4000)
        none_b = NoCompression().compress(update).nbytes
        topk_b = TopKSparsifier(0.05).compress(update).nbytes
        sign_b = SignSGDCompressor().compress(update).nbytes
        tern_b = TernaryCompressor().compress(update).nbytes
        q8_b = QuantizedCompressor(8).compress(update).nbytes
        assert sign_b < tern_b < q8_b < none_b
        assert topk_b < none_b

    def test_quantized_compressor_low_error(self, rng):
        update = rng.normal(size=2000)
        decoded, _ = QuantizedCompressor(8).roundtrip(update)
        assert np.abs(decoded - update).max() < (update.max() - update.min()) / 200

    def test_signsgd_preserves_sign(self, rng):
        update = rng.normal(size=300)
        decoded, _ = SignSGDCompressor().roundtrip(update)
        nonzero = update != 0
        assert np.all(np.sign(decoded[nonzero]) == np.sign(update[nonzero]))

    def test_unknown_compressor(self):
        with pytest.raises(KeyError):
            get_compressor("zip")


class TestAggregation:
    def _updates(self, rng, deltas, counts):
        return [
            ClientUpdate(client_id=f"c{i}", delta=np.asarray(d, dtype=float), n_samples=n, local_loss=0.0)
            for i, (d, n) in enumerate(zip(deltas, counts))
        ]

    def test_fedavg_weighted_mean(self, rng):
        updates = self._updates(rng, [[1.0, 1.0], [3.0, 3.0]], [1, 3])
        agg = FedAvgAggregator().aggregate(updates)
        np.testing.assert_allclose(agg, [2.5, 2.5])

    def test_fedavg_empty_rejected(self):
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate([])

    def test_trimmed_mean_ignores_outlier(self, rng):
        deltas = [[1.0], [1.1], [0.9], [1.0], [100.0]]
        agg = TrimmedMeanAggregator(trim_fraction=0.2).aggregate(self._updates(rng, deltas, [1] * 5))
        assert abs(agg[0] - 1.0) < 0.2

    def test_fedadam_moves_toward_pseudogradient(self, rng):
        agg = FedAdamAggregator(lr=0.1)
        updates = self._updates(rng, [[1.0, -1.0]], [1])
        step = agg.aggregate(updates)
        assert step[0] > 0 and step[1] < 0

    def test_secure_aggregation_matches_fedavg(self, rng):
        deltas = rng.normal(size=(5, 200))
        updates = self._updates(rng, deltas, [10, 20, 30, 40, 50])
        plain = FedAvgAggregator().aggregate(updates)
        secure = SecureAggregator(seed=3).aggregate(updates)
        np.testing.assert_allclose(plain, secure, atol=1e-9)

    def test_secure_masking_hides_individual_updates(self, rng):
        deltas = rng.normal(size=(4, 100))
        updates = self._updates(rng, deltas, [1, 1, 1, 1])
        masked = SecureAggregator(mask_scale=5.0, seed=0).mask_updates(updates)
        for original, hidden in zip(updates, masked):
            assert np.linalg.norm(hidden.delta - original.delta) > 1.0


class TestClientsAndServer:
    def test_client_update_changes_weights(self, fl_setup):
        _, _, clients = fl_setup
        model = make_mlp(10, 4, hidden=(16,), seed=0)
        update = clients[0].train_round(model)
        assert np.linalg.norm(update.delta) > 0
        assert update.n_samples == clients[0].n_samples

    def test_fedprox_shrinks_update_norm(self, fl_setup):
        _, _, clients = fl_setup
        model = make_mlp(10, 4, hidden=(16,), seed=0)
        plain = FederatedClient(clients[0].data, local_epochs=2, lr=0.05, proximal_mu=0.0, seed=0).train_round(model)
        prox = FederatedClient(clients[0].data, local_epochs=2, lr=0.05, proximal_mu=1.0, seed=0).train_round(model)
        assert np.linalg.norm(prox.delta) < np.linalg.norm(plain.delta)

    def test_federated_training_approaches_centralized(self, fl_setup):
        train, test, clients = fl_setup
        global_model = make_mlp(10, 4, hidden=(32, 16), seed=0)
        server = FederatedServer(global_model, clients, eval_data=(test.x, test.y), scheduler=RandomScheduler(0.6, seed=0))
        history = server.run(8)
        fed_acc = history[-1].global_accuracy
        central = centralized_baseline(make_mlp(10, 4, hidden=(32, 16), seed=0), clients, (test.x, test.y), epochs=6)
        assert fed_acc > 0.8
        assert central["accuracy"] - fed_acc < 0.15
        assert history[0].global_accuracy <= fed_acc + 0.05

    def test_compression_reduces_uplink(self, fl_setup):
        train, test, clients = fl_setup
        dense = FederatedServer(make_mlp(10, 4, hidden=(16,), seed=0), clients, eval_data=(test.x, test.y))
        sparse = FederatedServer(
            make_mlp(10, 4, hidden=(16,), seed=0), clients, eval_data=(test.x, test.y), compressor=TopKSparsifier(0.05)
        )
        dense.run(2)
        sparse.run(2)
        assert sparse.total_communication()["uplink_mb"] < dense.total_communication()["uplink_mb"] * 0.2

    def test_personalization_improves_local_accuracy_on_noniid(self):
        ds = make_gaussian_blobs(1500, 10, 5, cluster_std=1.5, seed=4)
        train, test = ds.split(0.3, seed=4)
        parts = partition_dirichlet(train, 6, alpha=0.1, seed=4)
        clients = [FederatedClient(cd, local_epochs=1, lr=0.05, seed=i) for i, cd in enumerate(parts)]
        server = FederatedServer(make_mlp(10, 5, hidden=(16,), seed=0), clients, eval_data=(test.x, test.y))
        server.run(3)
        results = server.personalize_all(epochs=3)
        gains = [r.get("personal_accuracy", 0.0) - r["global_accuracy"] for r in results.values()]
        assert np.mean(gains) > -0.02  # personalization should not hurt on average
        assert max(gains) >= 0.0

    def test_pseudo_labeling_promotes_samples(self, fl_setup):
        train, test, clients = fl_setup
        model = make_mlp(10, 4, hidden=(32,), seed=0)
        model.fit(train.x, train.y, epochs=5, lr=0.02)
        semi_data = drop_labels(clients[0].data, 0.5, seed=0)
        semi_client = FederatedClient(semi_data, seed=0)
        before = semi_client.n_samples
        promoted = semi_client.pseudo_label(model, confidence_threshold=0.7)
        assert promoted > 0
        assert semi_client.n_samples == before + promoted

    def test_empty_round_when_no_eligible_clients(self, fl_setup):
        train, test, clients = fl_setup
        server = FederatedServer(
            make_mlp(10, 4, hidden=(8,), seed=0),
            clients,
            scheduler=EligibilityScheduler(),
            eval_data=(test.x, test.y),
        )
        result = server.run_round(0, device_context={})
        assert result.participants == [] and result.uplink_bytes == 0


class TestSchedulers:
    def _context(self, online=True, metered=False, idle=True, plugged=True, soc=0.9):
        return {
            "network_online": online,
            "metered": metered,
            "idle": idle,
            "power_state": "plugged_in" if plugged else "on_battery",
            "state_of_charge": soc,
        }

    def test_random_scheduler_fraction(self):
        sched = RandomScheduler(fraction=0.5, min_clients=1, seed=0)
        picked = sched.select([f"c{i}" for i in range(10)], 0)
        assert len(picked) == 5

    def test_eligibility_scheduler_filters(self):
        sched = EligibilityScheduler()
        ctx = {
            "good": self._context(),
            "metered": self._context(metered=True),
            "offline": self._context(online=False),
            "busy": self._context(idle=False),
            "low_batt": self._context(plugged=False, soc=0.2),
        }
        picked = sched.select(list(ctx), 0, context=ctx)
        assert picked == ["good"]

    def test_energy_aware_prefers_plugged(self):
        sched = EnergyAwareScheduler(max_clients=2)
        ctx = {
            "plugged": self._context(plugged=True, soc=0.5),
            "full_battery": self._context(plugged=False, soc=0.95),
            "low": self._context(plugged=False, soc=0.2),
        }
        picked = sched.select(list(ctx), 0, context=ctx)
        assert picked[0] == "plugged" and "low" not in picked
