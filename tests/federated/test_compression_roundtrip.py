"""Compression round-trip contracts: payload accounting, documented error
bounds on adversarial inputs, and batched == sequential equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated import (
    CompressedUpdate,
    NoCompression,
    QuantizedCompressor,
    SignSGDCompressor,
    TernaryCompressor,
    TopKSparsifier,
    UpdateCompressor,
)

DIM = 512


def adversarial_inputs(rng):
    """Inputs that historically break compressors: zeros, subnormals, spikes."""
    spikes = np.zeros(DIM)
    spikes[::37] = 1e3
    spikes[1::53] = -1e3
    return {
        "zeros": np.zeros(DIM),
        "subnormals": np.full(DIM, 5e-310),
        "mixed_subnormals": np.where(np.arange(DIM) % 2 == 0, 5e-310, -5e-310),
        "mixed_sign_spikes": spikes + rng.normal(0, 1e-3, DIM),
        "gaussian": rng.normal(size=DIM),
        "one_hot_spike": np.eye(1, DIM, 7).ravel() * 1e6,
    }


ALL_COMPRESSORS = [
    NoCompression(),
    TopKSparsifier(fraction=0.1),
    SignSGDCompressor(),
    TernaryCompressor(),
    QuantizedCompressor(bits=8),
    QuantizedCompressor(bits=2),
]


class TestPayloadAccounting:
    @pytest.mark.parametrize("comp", ALL_COMPRESSORS, ids=lambda c: c.name + str(getattr(c, "bits", "")))
    def test_nbytes_consistent_with_ratio(self, comp, rng):
        update = rng.normal(size=DIM)
        compressed = comp.compress(update)
        assert compressed.nbytes > 0
        assert compressed.original_dim == DIM
        assert compressed.ratio() == pytest.approx(DIM * 4 / compressed.nbytes)

    def test_documented_nbytes_formulas(self, rng):
        update = rng.normal(size=DIM)
        assert NoCompression().compress(update).nbytes == DIM * 4
        k = int(np.ceil(0.1 * DIM))
        assert TopKSparsifier(0.1).compress(update).nbytes == k * 8
        assert SignSGDCompressor().compress(update).nbytes == int(np.ceil(DIM / 8)) + 4
        assert TernaryCompressor().compress(update).nbytes == int(np.ceil(DIM / 4)) + 4
        assert QuantizedCompressor(8).compress(update).nbytes == DIM + 8

    def test_compression_actually_compresses(self, rng):
        update = rng.normal(size=DIM)
        dense = NoCompression().compress(update).nbytes
        for comp in (TopKSparsifier(0.05), SignSGDCompressor(), TernaryCompressor(), QuantizedCompressor(8)):
            assert comp.compress(update).nbytes < dense


class TestErrorBoundsOnAdversarialInputs:
    @pytest.mark.parametrize("name", ["zeros", "subnormals", "mixed_subnormals", "mixed_sign_spikes", "gaussian", "one_hot_spike"])
    def test_no_compression_is_float32_rounding(self, name, rng):
        update = adversarial_inputs(rng)[name]
        decoded, _ = NoCompression().roundtrip(update)
        # float32 relative rounding plus underflow-to-zero for subnormals.
        bound = np.maximum(np.abs(update) * 2**-23, 2e-38)
        assert np.all(np.abs(decoded - update) <= bound)

    @pytest.mark.parametrize("name", ["zeros", "subnormals", "mixed_subnormals", "mixed_sign_spikes", "gaussian", "one_hot_spike"])
    def test_topk_error_bounded_by_dropped_magnitude(self, name, rng):
        update = adversarial_inputs(rng)[name]
        k = int(np.ceil(0.1 * update.size))
        decoded, _ = TopKSparsifier(0.1).roundtrip(update)
        kth_largest = np.sort(np.abs(update))[-k]
        # Dropped coordinates are bounded by the k-th largest magnitude;
        # kept coordinates only see float32 rounding.
        bound = np.maximum(kth_largest, np.abs(update) * 2**-23) + 1e-300
        assert np.all(np.abs(decoded - update) <= bound)

    @pytest.mark.parametrize("name", ["zeros", "subnormals", "mixed_subnormals", "mixed_sign_spikes", "gaussian", "one_hot_spike"])
    def test_quantized_error_bounded_by_half_step(self, name, rng):
        update = adversarial_inputs(rng)[name]
        comp = QuantizedCompressor(bits=8)
        decoded, compressed = comp.roundtrip(update)
        scale = float(compressed.payload["scale"][0])
        lo = float(compressed.payload["lo"][0])
        span = max(abs(lo), abs(lo + scale * (2**8 - 1)))
        # Half a quantization step plus the float32 rounding of lo/scale.
        bound = 0.5 * scale + span * 2**-22 + 1e-300
        assert np.all(np.abs(decoded - update) <= bound)

    @pytest.mark.parametrize("name", ["zeros", "subnormals", "mixed_subnormals", "mixed_sign_spikes", "gaussian", "one_hot_spike"])
    def test_signsgd_decodes_to_scaled_signs(self, name, rng):
        update = adversarial_inputs(rng)[name]
        decoded, compressed = SignSGDCompressor().roundtrip(update)
        scale = float(compressed.payload["scale"][0])
        assert np.all(np.isin(decoded, [scale, -scale]))
        if scale > 0:  # a float32-underflowed scale (subnormal inputs) wipes the signs
            nonzero = np.abs(update) > 0
            assert np.all(np.sign(decoded[nonzero]) == np.sign(update[nonzero]))

    @pytest.mark.parametrize("name", ["zeros", "subnormals", "mixed_subnormals", "mixed_sign_spikes", "gaussian", "one_hot_spike"])
    def test_ternary_codes_respect_threshold(self, name, rng):
        update = adversarial_inputs(rng)[name]
        comp = TernaryCompressor(threshold_factor=0.7)
        decoded, compressed = comp.roundtrip(update)
        scale = float(compressed.payload["scale"][0])
        threshold = 0.7 * float(np.mean(np.abs(update)))
        assert np.all(np.isin(decoded, [-scale, 0.0, scale]))
        # Coordinates strictly below threshold must decode to zero.
        assert np.all(decoded[np.abs(update) < threshold * (1 - 1e-12)] == 0.0)

    def test_quantized_constant_vector_is_exact_zero_code(self):
        update = np.full(DIM, 3.25)
        decoded, _ = QuantizedCompressor(bits=8).roundtrip(update)
        np.testing.assert_allclose(decoded, update, atol=1e-6)


class TestBatchedRoundtripEquivalence:
    @pytest.mark.parametrize("comp", ALL_COMPRESSORS, ids=lambda c: c.name + str(getattr(c, "bits", "")))
    def test_batched_matches_sequential_on_random_stack(self, comp, rng):
        stack = rng.normal(size=(7, DIM)) * rng.lognormal(0, 2, size=(7, 1))
        batched, nbytes = comp.roundtrip_batch(stack)
        for i, row in enumerate(stack):
            decoded, compressed = comp.roundtrip(row)
            np.testing.assert_array_equal(batched[i], decoded, err_msg=f"row {i} of {comp.name}")
            assert nbytes[i] == compressed.nbytes

    @pytest.mark.parametrize("comp", ALL_COMPRESSORS, ids=lambda c: c.name + str(getattr(c, "bits", "")))
    def test_batched_matches_sequential_on_adversarial_stack(self, comp, rng):
        stack = np.stack(list(adversarial_inputs(rng).values()))
        batched, nbytes = comp.roundtrip_batch(stack)
        for i, row in enumerate(stack):
            decoded, compressed = comp.roundtrip(row)
            np.testing.assert_array_equal(batched[i], decoded, err_msg=f"row {i} of {comp.name}")
            assert nbytes[i] == compressed.nbytes

    def test_base_class_fallback_loops_rows(self, rng):
        class HalvingCompressor(UpdateCompressor):
            name = "halving"

            def compress(self, update):
                return CompressedUpdate("halving", {"v": (update * 0.5).astype(np.float32)}, update.size, update.size * 2)

            def decompress(self, compressed):
                return compressed.payload["v"].astype(np.float64) * 2.0

        stack = rng.normal(size=(4, 32))
        batched, nbytes = HalvingCompressor().roundtrip_batch(stack)
        assert batched.shape == stack.shape
        assert np.all(nbytes == 64)
        np.testing.assert_allclose(batched, stack, rtol=1e-6)

    def test_batch_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            NoCompression().roundtrip_batch(rng.normal(size=DIM))
