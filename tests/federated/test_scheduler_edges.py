"""Edge-case tests for client schedulers: empty fleets, tiny fleets,
determinism under fixed seeds and malformed device context."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_gaussian_blobs, partition_iid
from repro.federated import (
    EligibilityScheduler,
    EnergyAwareScheduler,
    FederatedClient,
    FederatedEngine,
    RandomScheduler,
)
from repro.nn import make_mlp


def _ctx(online=True, metered=False, idle=True, plugged=True, soc=0.9):
    return {
        "network_online": online,
        "metered": metered,
        "idle": idle,
        "power_state": "plugged_in" if plugged else "on_battery",
        "state_of_charge": soc,
    }


class TestRandomSchedulerEdges:
    def test_empty_client_list(self):
        assert RandomScheduler(fraction=0.5, seed=0).select([], 0) == []

    def test_min_clients_larger_than_fleet(self):
        picked = RandomScheduler(fraction=0.1, min_clients=50, seed=0).select(["a", "b", "c"], 0)
        assert sorted(picked) == ["a", "b", "c"]

    def test_single_client_fleet(self):
        assert RandomScheduler(fraction=1.0, min_clients=1, seed=0).select(["only"], 0) == ["only"]

    def test_deterministic_across_instances_with_same_seed(self):
        ids = [f"c{i}" for i in range(30)]
        a = RandomScheduler(fraction=0.4, seed=7)
        b = RandomScheduler(fraction=0.4, seed=7)
        for round_index in range(5):
            assert a.select(ids, round_index) == b.select(ids, round_index)

    def test_different_seeds_eventually_differ(self):
        ids = [f"c{i}" for i in range(30)]
        a = [RandomScheduler(fraction=0.4, seed=1).select(ids, r) for r in range(3)]
        b = [RandomScheduler(fraction=0.4, seed=2).select(ids, r) for r in range(3)]
        assert a != b

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            RandomScheduler(fraction=0.0)
        with pytest.raises(ValueError):
            RandomScheduler(fraction=1.5)


class TestEligibilitySchedulerEdges:
    def test_missing_context_keys_mean_ineligible_not_crash(self):
        sched = EligibilityScheduler()
        contexts = {
            "no_keys": {},
            "only_online": {"network_online": True},
            "online_idle": {"network_online": True, "idle": True},
        }
        assert sched.select(list(contexts), 0, context=contexts) == []

    def test_none_values_in_context_do_not_crash(self):
        sched = EligibilityScheduler()
        contexts = {
            "none_soc": {"network_online": True, "idle": True, "metered": False, "power_state": None, "state_of_charge": None},
            "junk_soc": {"network_online": True, "idle": True, "metered": False, "state_of_charge": "low"},
            "good": _ctx(),
        }
        assert sched.select(list(contexts), 0, context=contexts) == ["good"]

    def test_none_context_entry(self):
        sched = EligibilityScheduler()
        assert sched.select(["a"], 0, context={"a": None}) == []

    def test_missing_soc_with_plugged_power_is_eligible(self):
        ctx = {"network_online": True, "idle": True, "metered": False, "power_state": "plugged_in"}
        assert EligibilityScheduler().select(["a"], 0, context={"a": ctx}) == ["a"]

    def test_max_clients_zero(self):
        contexts = {f"c{i}": _ctx() for i in range(5)}
        assert EligibilityScheduler(max_clients=0).select(list(contexts), 0, context=contexts) == []

    def test_no_context_at_all(self):
        assert EligibilityScheduler().select(["a", "b"], 0, context=None) == []

    def test_deterministic_downsampling_with_seed(self):
        contexts = {f"c{i}": _ctx() for i in range(20)}
        a = EligibilityScheduler(max_clients=5, seed=3)
        b = EligibilityScheduler(max_clients=5, seed=3)
        for r in range(4):
            assert a.select(list(contexts), r, context=contexts) == b.select(list(contexts), r, context=contexts)


class TestEnergyAwareSchedulerEdges:
    def test_malformed_soc_ranks_last_not_crash(self):
        contexts = {
            "good": _ctx(plugged=False, soc=0.8),
            "junk": {"network_online": True, "state_of_charge": object()},
            "none": {"network_online": True, "state_of_charge": None},
        }
        picked = EnergyAwareScheduler(max_clients=3).select(list(contexts), 0, context=contexts)
        assert picked[0] == "good" and set(picked) == set(contexts)

    def test_none_context_entries_are_offline(self):
        contexts = {"a": None, "b": _ctx()}
        assert EnergyAwareScheduler(max_clients=2).select(list(contexts), 0, context=contexts) == ["b"]

    def test_empty_everything(self):
        assert EnergyAwareScheduler(max_clients=3).select([], 0, context={}) == []

    def test_invalid_max_clients(self):
        with pytest.raises(ValueError):
            EnergyAwareScheduler(max_clients=0)


class TestSchedulerEngineInteraction:
    @pytest.fixture(scope="class")
    def small_world(self):
        ds = make_gaussian_blobs(400, 8, 3, seed=13)
        train, test = ds.split(0.25, seed=13)
        parts = partition_iid(train, 3, seed=13)
        clients = [FederatedClient(p, local_epochs=1, lr=0.05, seed=i) for i, p in enumerate(parts)]
        return clients, test

    def test_empty_eligibility_records_empty_round(self, small_world):
        clients, test = small_world
        engine = FederatedEngine(
            make_mlp(8, 3, hidden=(8,), seed=0), clients, scheduler=EligibilityScheduler(), eval_data=(test.x, test.y)
        )
        result = engine.run_round(0, device_context={})
        assert result.participants == [] and result.uplink_bytes == 0 and result.train_loss == 0.0
        assert result.global_accuracy > 0.0  # evaluation still ran

    def test_min_clients_larger_than_fleet_trains_everyone(self, small_world):
        clients, test = small_world
        engine = FederatedEngine(
            make_mlp(8, 3, hidden=(8,), seed=0),
            clients,
            scheduler=RandomScheduler(fraction=0.1, min_clients=10, seed=0),
            eval_data=(test.x, test.y),
        )
        result = engine.run_round(0)
        assert sorted(result.participants) == sorted(c.client_id for c in clients)

    def test_rounds_with_partial_context_skip_unknown_clients(self, small_world):
        clients, test = small_world
        context = {clients[0].client_id: _ctx()}  # others unknown -> ineligible
        engine = FederatedEngine(
            make_mlp(8, 3, hidden=(8,), seed=0), clients, scheduler=EligibilityScheduler(), eval_data=(test.x, test.y)
        )
        result = engine.run_round(0, device_context=context)
        assert result.participants == [clients[0].client_id]
