"""Property-based tests (hypothesis) for the federated aggregation rules.

Three invariants the round loop silently relies on:

* FedAvg is exactly the sample-count weighted mean of the client deltas.
* Secure aggregation's pairwise masks cancel: the server-visible masked
  aggregate equals the unmasked FedAvg aggregate to float tolerance.
* The trimmed mean stays inside the honest clients' per-coordinate range
  as long as the number of byzantine updates does not exceed the number of
  values trimmed per side.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.federated import (
    ClientUpdate,
    FedAvgAggregator,
    SecureAggregator,
    TrimmedMeanAggregator,
)

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def _updates(deltas: np.ndarray, counts) -> list:
    return [
        ClientUpdate(client_id=f"client-{i:03d}", delta=np.asarray(d, dtype=np.float64), n_samples=int(n), local_loss=0.0)
        for i, (d, n) in enumerate(zip(deltas, counts))
    ]


class TestFedAvgIsWeightedMean:
    @settings(max_examples=50, deadline=None)
    @given(
        arrays(np.float64, shape=st.tuples(st.integers(1, 12), st.integers(1, 64)), elements=finite),
        st.data(),
    )
    def test_matches_sample_weighted_mean(self, deltas, data):
        counts = data.draw(
            st.lists(st.integers(1, 500), min_size=deltas.shape[0], max_size=deltas.shape[0])
        )
        aggregated = FedAvgAggregator().aggregate(_updates(deltas, counts))
        expected = np.average(deltas, axis=0, weights=np.asarray(counts, dtype=np.float64))
        np.testing.assert_allclose(aggregated, expected, atol=1e-9, rtol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, shape=st.tuples(st.integers(1, 8), st.integers(1, 32)), elements=finite))
    def test_zero_sample_clients_fall_back_to_uniform(self, deltas):
        aggregated = FedAvgAggregator().aggregate(_updates(deltas, [0] * deltas.shape[0]))
        np.testing.assert_allclose(aggregated, deltas.mean(axis=0), atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, shape=st.integers(1, 64), elements=finite), st.integers(1, 1000))
    def test_single_client_identity(self, delta, count):
        aggregated = FedAvgAggregator().aggregate(_updates(delta[None], [count]))
        np.testing.assert_allclose(aggregated, delta, atol=0)


class TestSecureAggregationMasksCancel:
    @settings(max_examples=40, deadline=None)
    @given(
        arrays(np.float64, shape=st.tuples(st.integers(2, 10), st.integers(1, 64)), elements=finite),
        st.data(),
        st.integers(0, 2**16),
    )
    def test_masked_aggregate_equals_unmasked(self, deltas, data, seed):
        counts = data.draw(
            st.lists(st.integers(1, 50), min_size=deltas.shape[0], max_size=deltas.shape[0])
        )
        updates = _updates(deltas, counts)
        plain = FedAvgAggregator().aggregate(updates)
        secure = SecureAggregator(seed=seed).aggregate(updates)
        np.testing.assert_allclose(secure, plain, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, shape=st.tuples(st.integers(3, 8), st.integers(16, 64)), elements=finite))
    def test_individual_masked_updates_are_perturbed(self, deltas):
        updates = _updates(deltas, [1] * deltas.shape[0])
        masked = SecureAggregator(mask_scale=5.0, seed=1).mask_updates(updates)
        for original, hidden in zip(updates, masked):
            # With >= 2 peers the pairwise Gaussian masks are nonzero a.s.
            assert np.linalg.norm(hidden.delta - original.delta) > 1e-3

    def test_pairwise_masks_cancel_exactly_in_weighted_sum(self):
        rng = np.random.default_rng(0)
        deltas = rng.normal(size=(6, 40))
        counts = [5, 1, 9, 3, 7, 2]
        agg = SecureAggregator(mask_scale=10.0, seed=9)
        updates = _updates(deltas, counts)
        masked = agg.mask_updates(updates)
        weights = np.asarray(counts, dtype=np.float64) / sum(counts)
        masked_sum = np.einsum("c,cd->d", weights, np.stack([u.delta for u in masked]))
        plain_sum = np.einsum("c,cd->d", weights, deltas)
        np.testing.assert_allclose(masked_sum, plain_sum, atol=1e-8)


class TestTrimmedMeanBoundedByHonestRange:
    @settings(max_examples=60, deadline=None)
    @given(
        arrays(np.float64, shape=st.tuples(st.integers(3, 12), st.integers(1, 32)), elements=finite),
        st.integers(1, 4),
        st.floats(min_value=0.05, max_value=0.45),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    )
    def test_byzantine_updates_cannot_drag_aggregate_outside(self, honest, n_byz, trim, byz_value):
        n_total = honest.shape[0] + n_byz
        k = int(np.floor(trim * n_total))
        assume(k >= n_byz)  # the classic robustness precondition
        assume(n_total - 2 * k >= 1)
        byz = np.full((n_byz, honest.shape[1]), byz_value)
        deltas = np.concatenate([honest, byz], axis=0)
        aggregated = TrimmedMeanAggregator(trim_fraction=trim).aggregate(_updates(deltas, [1] * n_total))
        lo = honest.min(axis=0) - 1e-9
        hi = honest.max(axis=0) + 1e-9
        assert np.all(aggregated >= lo), "aggregate fell below the honest range"
        assert np.all(aggregated <= hi), "aggregate rose above the honest range"

    @settings(max_examples=40, deadline=None)
    @given(arrays(np.float64, shape=st.tuples(st.integers(4, 10), st.integers(1, 16)), elements=finite))
    def test_all_honest_matches_plain_trimmed_mean(self, deltas):
        n = deltas.shape[0]
        agg = TrimmedMeanAggregator(trim_fraction=0.25).aggregate(_updates(deltas, [1] * n))
        k = int(np.floor(0.25 * n))
        expected = np.sort(deltas, axis=0)[k : n - k].mean(axis=0)
        np.testing.assert_allclose(agg, expected, atol=0)

    def test_flip_attack_is_neutralized(self):
        rng = np.random.default_rng(4)
        honest = rng.normal(0.1, 0.02, size=(8, 50))
        attack = -25.0 * honest[:2]
        deltas = np.concatenate([honest, attack], axis=0)
        robust = TrimmedMeanAggregator(trim_fraction=0.2).aggregate(_updates(deltas, [1] * 10))
        naive = FedAvgAggregator().aggregate(_updates(deltas, [1] * 10))
        true_mean = honest.mean(axis=0)
        assert np.linalg.norm(robust - true_mean) < 0.2 * np.linalg.norm(naive - true_mean)
