"""Scenario RNG draws must be identical across every engine path.

The dropout/straggler/byzantine decisions of a :class:`RoundScenario`
resolve in ``FederatedEngine._plan_round`` before any training happens,
so ``engine="batched" | "oracle" | "sharded"`` must agree on *who*
participates, drops out, straggles or attacks — round for round.  (The
seed-era oracle ignored the scenario entirely; this suite pins the fix.)
Also covers the ``RoundScenario.__post_init__`` validation edges.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "runtime"))

from _sharded_worlds import federated_world  # noqa: E402

from repro.federated.engine import RoundScenario  # noqa: E402

N_CLIENTS = 12
N_ROUNDS = 4


def _scenario():
    return RoundScenario(
        dropout_rate=0.25,
        straggler_timeout_s=0.05,
        time_per_sample_s=1e-3,
        byzantine_ids=frozenset({"c1", "c4"}),
        byzantine_mode="flip",
        byzantine_scale=3.0,
        seed=13,
    )


def _run(engine, seed=9):
    fed = federated_world(seed, N_CLIENTS)
    fed.scenario = _scenario()
    results = [fed.run_round(r, engine=engine) for r in range(N_ROUNDS)]
    return fed, results


def _draws(results):
    """The scenario-driven decisions of each round, in comparable form."""
    return [
        {
            "participants": r.participants,
            "n_selected": r.n_selected,
            "n_dropouts": r.n_dropouts,
            "n_stragglers": r.n_stragglers,
            "n_byzantine": r.n_byzantine,
        }
        for r in results
    ]


@pytest.mark.parametrize("engine", ["oracle", "sharded"])
def test_scenario_draws_are_identical_across_engines(engine):
    _, ref_results = _run("batched")
    _, results = _run(engine)
    assert _draws(results) == _draws(ref_results)


@pytest.mark.parametrize("engine", ["oracle", "sharded"])
def test_scenario_rounds_are_fully_identical_across_engines(engine):
    ref, ref_results = _run("batched")
    fed, results = _run(engine)
    assert [r.as_dict() for r in results] == [r.as_dict() for r in ref_results]
    assert (
        fed.global_model.get_flat_weights().tobytes()
        == ref.global_model.get_flat_weights().tobytes()
    )


def test_scenario_actually_perturbs_the_rounds():
    # Guard against the differential test passing vacuously.
    _, results = _run("batched")
    assert sum(r.n_dropouts + r.n_stragglers for r in results) >= 1
    assert sum(r.n_byzantine for r in results) >= 1


# -- RoundScenario validation edges ---------------------------------------


def test_dropout_rate_bounds():
    RoundScenario(dropout_rate=0.0)
    RoundScenario(dropout_rate=0.999)
    with pytest.raises(ValueError):
        RoundScenario(dropout_rate=1.0)
    with pytest.raises(ValueError):
        RoundScenario(dropout_rate=-0.1)


def test_straggler_timeout_must_be_positive_or_none():
    RoundScenario(straggler_timeout_s=None)
    RoundScenario(straggler_timeout_s=1e-9)
    with pytest.raises(ValueError):
        RoundScenario(straggler_timeout_s=0.0)
    with pytest.raises(ValueError):
        RoundScenario(straggler_timeout_s=-1.0)


def test_time_per_sample_must_be_nonnegative():
    RoundScenario(time_per_sample_s=0.0)
    with pytest.raises(ValueError):
        RoundScenario(time_per_sample_s=-1e-6)


def test_latency_jitter_must_be_nonnegative():
    RoundScenario(latency_jitter=0.0)
    with pytest.raises(ValueError):
        RoundScenario(latency_jitter=-0.5)


def test_byzantine_scale_must_be_positive():
    RoundScenario(byzantine_scale=0.5)
    with pytest.raises(ValueError):
        RoundScenario(byzantine_scale=0.0)
    with pytest.raises(ValueError):
        RoundScenario(byzantine_scale=-10.0)


def test_byzantine_mode_is_validated():
    with pytest.raises(ValueError):
        RoundScenario(byzantine_mode="jam")


def test_byzantine_ids_are_frozen():
    scenario = RoundScenario(byzantine_ids=["c1", "c2"])
    assert scenario.byzantine_ids == frozenset({"c1", "c2"})
