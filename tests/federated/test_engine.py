"""Equivalence and scenario tests for the vectorized FederatedEngine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.data.federated import ClientData
from repro.devices import Battery, EdgeDevice, Fleet, NetworkCondition, get_profile
from repro.devices.network import NetworkType
from repro.federated import (
    FederatedClient,
    FederatedEngine,
    FederatedServer,
    RandomScheduler,
    RoundScenario,
    TrimmedMeanAggregator,
    get_compressor,
    partition_cohorts,
    vectorized_supported,
)
from repro.nn import make_mlp


@pytest.fixture(scope="module")
def task():
    ds = make_gaussian_blobs(1600, 12, 4, cluster_std=1.2, seed=21)
    train, test = ds.split(0.3, seed=21)
    return train, test


def _clients(train, n=8, **kwargs):
    parts = partition_dirichlet(train, n, alpha=0.5, seed=5)
    defaults = dict(local_epochs=2, lr=0.05, batch_size=32)
    defaults.update(kwargs)
    return [FederatedClient(p, seed=i, **defaults) for i, p in enumerate(parts)]


def _pair(train, test, client_kwargs=None, **engine_kwargs):
    """Two identical engine worlds for vectorized-vs-legacy comparison."""
    worlds = []
    for _ in range(2):
        worlds.append(
            FederatedEngine(
                make_mlp(12, 4, hidden=(24, 12), seed=0),
                _clients(train, **(client_kwargs or {})),
                eval_data=(test.x, test.y),
                scheduler=RandomScheduler(0.75, seed=9),
                **engine_kwargs,
            )
        )
    return worlds


def _assert_rounds_equal(a, b):
    assert a.participants == b.participants
    assert a.uplink_bytes == b.uplink_bytes
    assert a.downlink_bytes == b.downlink_bytes
    assert np.isclose(a.train_loss, b.train_loss, atol=1e-9)
    assert np.isclose(a.global_accuracy, b.global_accuracy, atol=1e-9)
    assert np.isclose(a.mean_local_accuracy, b.mean_local_accuracy, atol=1e-9)


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("compressor", [None, "topk", "signsgd", "ternary", "quantized"])
    def test_round_matches_legacy_loop(self, task, compressor):
        train, test = task
        kwargs = {"compressor": get_compressor(compressor)} if compressor else {}
        vec, leg = _pair(train, test, **kwargs)
        w0 = vec.global_model.get_flat_weights().copy()
        rv = vec.run_round(0)
        rl = leg.run_round_legacy(0)
        _assert_rounds_equal(rv, rl)
        dv = vec.global_model.get_flat_weights() - w0
        dl = leg.global_model.get_flat_weights() - w0
        np.testing.assert_allclose(dv, dl, atol=1e-9)

    def test_multi_round_trajectory_matches(self, task):
        train, test = task
        vec, leg = _pair(train, test)
        for r in range(3):
            _assert_rounds_equal(vec.run_round(r), leg.run_round_legacy(r))
        np.testing.assert_allclose(
            vec.global_model.get_flat_weights(), leg.global_model.get_flat_weights(), atol=1e-9
        )

    def test_fedprox_clients_match_legacy(self, task):
        train, test = task
        vec, leg = _pair(train, test, client_kwargs={"proximal_mu": 0.5})
        _assert_rounds_equal(vec.run_round(0), leg.run_round_legacy(0))
        np.testing.assert_allclose(
            vec.global_model.get_flat_weights(), leg.global_model.get_flat_weights(), atol=1e-9
        )

    def test_zero_sample_client_contributes_zero_delta(self, task):
        train, test = task
        clients = _clients(train, n=5)
        empty = FederatedClient(
            ClientData(client_id="client-empty", x=np.empty((0, 12)), y=np.empty((0,), dtype=np.int64)),
            seed=99,
        )
        vec = FederatedEngine(make_mlp(12, 4, hidden=(16,), seed=0), clients + [empty], eval_data=(test.x, test.y))
        leg = FederatedEngine(make_mlp(12, 4, hidden=(16,), seed=0), clients + [empty], eval_data=(test.x, test.y))
        _assert_rounds_equal(vec.run_round(0), leg.run_round_legacy(0))
        np.testing.assert_allclose(
            vec.global_model.get_flat_weights(), leg.global_model.get_flat_weights(), atol=1e-9
        )

    def test_unsupported_model_falls_back_to_per_client_loop(self, task):
        train, test = task
        clients = _clients(train)

        def model():  # BatchNorm in the stack -> genuinely unsupported
            from repro.nn.layers import BatchNorm, Dense
            from repro.nn.model import Sequential

            return Sequential(
                [Dense(16, activation="relu"), BatchNorm(), Dense(4)], input_shape=(12,), seed=0
            )

        assert not vectorized_supported(model(), clients)
        cohorts = partition_cohorts(model(), clients)
        assert [c.kind for c in cohorts] == ["fallback"]
        vec = FederatedEngine(model(), clients, eval_data=(test.x, test.y))
        leg = FederatedEngine(model(), clients, eval_data=(test.x, test.y))
        _assert_rounds_equal(vec.run_round(0), leg.run_round_legacy(0))

    def test_dropout_model_is_vectorized(self, task):
        """Dropout stacks batch since PR 5 (exact per-client mask streams)."""
        train, test = task
        clients = _clients(train)
        model = make_mlp(12, 4, hidden=(16,), dropout=0.2, seed=0)
        assert vectorized_supported(model, clients)
        vec = FederatedEngine(model, clients, eval_data=(test.x, test.y))
        leg = FederatedEngine(make_mlp(12, 4, hidden=(16,), dropout=0.2, seed=0), clients, eval_data=(test.x, test.y))
        _assert_rounds_equal(vec.run_round(0), leg.run_round_legacy(0))
        np.testing.assert_allclose(
            vec.global_model.get_flat_weights(), leg.global_model.get_flat_weights(), atol=1e-9
        )

    def test_mixed_optimizers_split_into_batched_cohorts(self, task):
        train, _ = task
        clients = _clients(train)
        clients[0].optimizer_name = "adam"
        model = make_mlp(12, 4, seed=0)
        # No longer a single sweep, but no scalar fallback either: one
        # batched cohort per optimizer family.
        assert not vectorized_supported(model, clients)
        cohorts = partition_cohorts(model, clients)
        assert all(c.batched for c in cohorts)
        assert sorted(c.key[0] for c in cohorts) == ["adam", "sgd"]

    def test_server_facade_delegates_to_engine(self, task):
        train, test = task
        server = FederatedServer(make_mlp(12, 4, hidden=(24, 12), seed=0), _clients(train), eval_data=(test.x, test.y))
        history = server.run(2)
        assert len(server.history) == 2 and history[-1] is server.history[-1]
        assert server.total_communication()["rounds"] == 2.0
        assert history[-1].global_accuracy > 0.5


class TestRoundScenarios:
    def test_dropouts_and_stragglers_are_accounted(self, task):
        train, test = task
        scenario = RoundScenario(dropout_rate=0.3, straggler_timeout_s=0.3, time_per_sample_s=1e-3, seed=11)
        engine = FederatedEngine(
            make_mlp(12, 4, hidden=(16,), seed=0), _clients(train), eval_data=(test.x, test.y), scenario=scenario
        )
        history = engine.run(5)
        assert any(r.n_dropouts > 0 for r in history)
        for r in history:
            assert len(r.participants) + r.n_dropouts + r.n_stragglers == r.n_selected
            # Dropped/straggling clients still received the broadcast model.
            assert r.downlink_bytes == r.n_selected * engine._model_bytes

    def test_scenario_is_deterministic_per_round(self, task):
        train, test = task
        results = []
        for _ in range(2):
            engine = FederatedEngine(
                make_mlp(12, 4, hidden=(16,), seed=0),
                _clients(train),
                eval_data=(test.x, test.y),
                scenario=RoundScenario(dropout_rate=0.4, seed=3),
            )
            results.append([r.participants for r in engine.run(3)])
        assert results[0] == results[1]

    def test_byzantine_clients_are_corrupted_and_trimmed(self, task):
        train, test = task
        byz_id = max(_clients(train, n=8), key=lambda c: c.n_samples).client_id
        attack = dict(byzantine_ids={byz_id}, byzantine_mode="flip", byzantine_scale=30.0)

        def world(aggregator=None, attacked=False):
            return FederatedEngine(
                make_mlp(12, 4, hidden=(16,), seed=0),
                _clients(train, n=8),
                aggregator=aggregator,
                scenario=RoundScenario(**attack) if attacked else None,
            )

        honest_avg, attacked_avg = world(), world(attacked=True)
        honest_trim = world(aggregator=TrimmedMeanAggregator(trim_fraction=0.2))
        robust_trim = world(aggregator=TrimmedMeanAggregator(trim_fraction=0.2), attacked=True)
        assert attacked_avg.run_round(0).n_byzantine == 1
        assert robust_trim.run_round(0).n_byzantine == 1
        honest_avg.run_round(0)
        honest_trim.run_round(0)
        avg_shift = np.linalg.norm(
            attacked_avg.global_model.get_flat_weights() - honest_avg.global_model.get_flat_weights()
        )
        trim_shift = np.linalg.norm(
            robust_trim.global_model.get_flat_weights() - honest_trim.global_model.get_flat_weights()
        )
        # FedAvg absorbs the flipped 30x delta; the trimmed mean discards it.
        assert avg_shift > 10 * trim_shift

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            RoundScenario(dropout_rate=1.5)
        with pytest.raises(ValueError):
            RoundScenario(byzantine_mode="jam")

    def test_all_dropped_round_is_empty_but_billed(self, task):
        train, test = task
        engine = FederatedEngine(
            make_mlp(12, 4, hidden=(16,), seed=0),
            _clients(train),
            eval_data=(test.x, test.y),
            scenario=RoundScenario(dropout_rate=0.999999, seed=0),
        )
        result = engine.run_round(0)
        assert result.participants == [] and result.uplink_bytes == 0
        assert result.downlink_bytes == result.n_selected * engine._model_bytes
        assert result.n_dropouts == result.n_selected > 0


class TestFleetIntegration:
    def _fleet_world(self, train, test, n=8, eligible_ids=("client-0", "client-2")):
        clients = _clients(train, n=n)
        devices = []
        for i, c in enumerate(clients):
            eligible = c.client_id in eligible_ids
            battery = Battery(capacity_j=5000.0, plugged_in=eligible)
            net = NetworkCondition.of(NetworkType.WIFI if eligible else NetworkType.OFFLINE)
            device = EdgeDevice(c.client_id, get_profile("phone-mid"), network=net, battery=battery, seed=i)
            device.idle = True
            devices.append(device)
        fleet = Fleet(devices)
        from repro.federated import EligibilityScheduler

        engine = FederatedEngine(
            make_mlp(12, 4, hidden=(16,), seed=0),
            clients,
            scheduler=EligibilityScheduler(),
            eval_data=(test.x, test.y),
            fleet=fleet,
        )
        return engine, fleet

    def test_selection_driven_by_live_fleet_state(self, task):
        train, test = task
        engine, fleet = self._fleet_world(train, test)
        result = engine.run_round(0)
        assert sorted(result.participants) == ["client-0", "client-2"]

    def test_training_drains_participating_batteries(self, task):
        train, test = task
        engine, fleet = self._fleet_world(train, test)
        # Unplug so the drain is visible in the level (plugged_in recharges state).
        for cid in ("client-0", "client-2"):
            fleet.get(cid).battery.plugged_in = False
            fleet.get(cid).battery.level_j = 5000.0
        engine.scheduler.min_soc = 0.5
        engine.run_round(0)
        for cid in ("client-0", "client-2"):
            assert fleet.get(cid).battery.level_j < 5000.0
        # Non-participants untouched.
        assert fleet.get("client-1").battery.level_j == fleet.get("client-1").battery.capacity_j

    def test_state_change_reflected_next_round(self, task):
        train, test = task
        engine, fleet = self._fleet_world(train, test)
        engine.run_round(0)
        fleet.get("client-0").network = NetworkCondition.of(NetworkType.OFFLINE)
        result = engine.run_round(1)
        assert result.participants == ["client-2"]

    def test_empty_eligibility_records_empty_round(self, task):
        train, test = task
        engine, _ = self._fleet_world(train, test, eligible_ids=())
        result = engine.run_round(0)
        assert result.participants == [] and result.uplink_bytes == 0 and result.downlink_bytes == 0
        assert len(engine.history) == 1

    def test_explicit_context_overrides_fleet(self, task):
        train, test = task
        engine, _ = self._fleet_world(train, test)
        result = engine.run_round(0, device_context={})
        assert result.participants == []

    def test_all_straggler_round_still_drains_batteries(self, task):
        train, test = task
        engine, fleet = self._fleet_world(train, test)
        # A deadline no client can meet: every survivor straggles.
        engine.scenario = RoundScenario(straggler_timeout_s=1e-9, time_per_sample_s=1e-3, seed=0)
        for cid in ("client-0", "client-2"):
            fleet.get(cid).battery.plugged_in = False
            fleet.get(cid).battery.level_j = 5000.0
        result = engine.run_round(0)
        assert result.participants == [] and result.n_stragglers == result.n_selected > 0
        for cid in ("client-0", "client-2"):
            assert fleet.get(cid).battery.level_j < 5000.0


class TestHardwareStragglerLatency:
    """RoundScenario.hardware_latency ties straggler timeouts to peak_flops."""

    def _engine_on(self, train, test, profiles):
        clients = _clients(train, n=len(profiles))
        devices = [
            EdgeDevice(c.client_id, get_profile(p), battery=Battery(capacity_j=5e4, plugged_in=True), seed=i)
            for i, (c, p) in enumerate(zip(clients, profiles))
        ]
        for d in devices:
            d.idle = True
        return (
            FederatedEngine(
                make_mlp(12, 4, hidden=(16,), seed=0),
                clients,
                eval_data=(test.x, test.y),
                fleet=Fleet(devices),
            ),
            clients,
        )

    def test_per_sample_time_follows_device_profile(self, task):
        train, test = task
        engine, clients = self._engine_on(train, test, ["mcu-m4", "phone-flagship"])
        engine.scenario = RoundScenario(hardware_latency=True, straggler_timeout_s=1.0)
        slow = engine._time_per_sample_s(clients[0].client_id)
        fast = engine._time_per_sample_s(clients[1].client_id)
        assert slow > fast > 0.0
        # cross-check against the cost model directly
        cm = engine._ensure_cost_model()
        expected = cm.model_inference_cost(get_profile("mcu-m4"), engine.global_model).latency_s * cm.training_factor
        assert slow == pytest.approx(expected)

    def test_slow_hardware_straggles_fast_hardware_survives(self, task):
        train, test = task
        engine, clients = self._engine_on(train, test, ["mcu-m4", "phone-flagship"])
        slow_id, fast_id = clients[0].client_id, clients[1].client_id
        # Deterministic jitter (sigma=0 -> lognormal == 1); deadline between
        # the two hardware-derived round latencies.
        engine.scenario = RoundScenario(hardware_latency=True, latency_jitter=0.0, straggler_timeout_s=1.0, seed=0)
        slow_total = clients[0].n_samples * clients[0].local_epochs * engine._time_per_sample_s(slow_id)
        fast_total = clients[1].n_samples * clients[1].local_epochs * engine._time_per_sample_s(fast_id)
        assert fast_total < slow_total
        engine.scenario = RoundScenario(
            hardware_latency=True,
            latency_jitter=0.0,
            straggler_timeout_s=(slow_total + fast_total) / 2.0,
            seed=0,
        )
        survivors, stragglers, n_drop, n_strag = engine._apply_scenario([slow_id, fast_id], 0)
        assert survivors == [fast_id]
        assert stragglers == [slow_id] and n_strag == 1 and n_drop == 0

    def test_unmapped_client_falls_back_to_constant(self, task):
        train, test = task
        clients = _clients(train, n=2)
        engine = FederatedEngine(
            make_mlp(12, 4, hidden=(16,), seed=0), clients, eval_data=(test.x, test.y)
        )  # no fleet: no device to read peak_flops from
        engine.scenario = RoundScenario(hardware_latency=True, time_per_sample_s=7e-3)
        assert engine._time_per_sample_s(clients[0].client_id) == 7e-3

    def test_round_reports_hardware_stragglers(self, task):
        train, test = task
        engine, clients = self._engine_on(train, test, ["mcu-m0", "edge-server"])
        slow_total = (
            clients[0].n_samples * clients[0].local_epochs * 3.0
            * engine._ensure_cost_model().model_inference_cost(
                get_profile("mcu-m0"), engine.global_model
            ).latency_s
        )
        engine.scenario = RoundScenario(
            hardware_latency=True, latency_jitter=0.0, straggler_timeout_s=slow_total / 2.0, seed=1
        )
        result = engine.run_round(0)
        assert result.n_stragglers >= 1
        assert clients[0].client_id not in result.participants
