"""Batched-vs-legacy equivalence for the generalized vectorized engine.

PR 5 extends ``train_clients_batched`` beyond plain-SGD/uniform-config/pure-
Dense fleets: momentum and Adam clients (stacked per-client optimizer state,
per-client hyper-parameters), Dropout models (per-client mask streams cloned
at the exact per-client-loop position) and mixed batch-size / epoch /
optimizer fleets bucketed into homogeneous cohorts.  Every new path must be
allclose-identical to the per-client loop, which stays the oracle.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.federated.engine as engine_mod
from repro.data import make_gaussian_blobs, partition_dirichlet, partition_iid
from repro.data.federated import ClientData
from repro.federated import (
    FederatedClient,
    FederatedEngine,
    partition_cohorts,
    train_clients_batched,
    vectorized_supported,
)
from repro.nn import make_mlp
from repro.nn.optimizers import SGD, Adam, Momentum

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


@pytest.fixture(scope="module")
def task():
    ds = make_gaussian_blobs(1200, 10, 4, cluster_std=1.2, seed=31)
    return ds.split(0.25, seed=31)


def _clients(train, n=6, configs=None, **kwargs):
    parts = partition_dirichlet(train, n, alpha=0.7, seed=3)
    defaults = dict(local_epochs=2, lr=0.04, batch_size=16)
    out = []
    for i, p in enumerate(parts):
        cfg = dict(defaults)
        cfg.update(kwargs)
        if configs is not None:
            cfg.update(configs[i % len(configs)])
        out.append(FederatedClient(p, seed=i, **cfg))
    return out


def _model(dropout=0.0, hidden=(12, 8)):
    return make_mlp(10, 4, hidden=hidden, dropout=dropout, seed=0)


def _assert_equiv(vec, leg, rounds=1, atol=1e-9):
    for r in range(rounds):
        rv, rl = vec.run_round(r), leg.run_round_legacy(r)
        assert rv.participants == rl.participants
        assert rv.uplink_bytes == rl.uplink_bytes
        assert np.isclose(rv.train_loss, rl.train_loss, atol=atol)
        assert np.isclose(rv.mean_local_accuracy, rl.mean_local_accuracy, atol=atol)
    np.testing.assert_allclose(
        vec.global_model.get_flat_weights(), leg.global_model.get_flat_weights(), atol=atol
    )


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("optimizer", ["momentum", "adam"])
    @pytest.mark.parametrize("dropout", [0.0, 0.3])
    def test_round_matches_legacy(self, task, optimizer, dropout):
        train, test = task
        mk = lambda: FederatedEngine(
            _model(dropout), _clients(train, optimizer=optimizer), eval_data=(test.x, test.y)
        )
        _assert_equiv(mk(), mk(), rounds=2)

    @pytest.mark.parametrize(
        "optimizer,kwargs",
        [
            ("momentum", {"momentum": 0.8}),
            ("momentum", {"momentum": 0.95, "weight_decay": 1e-3}),
            ("adam", {"beta1": 0.85, "beta2": 0.97}),
            ("adam", {"eps": 1e-6, "weight_decay": 5e-4}),
            ("sgd", {"weight_decay": 1e-3}),
        ],
    )
    def test_custom_hyperparams_match_legacy(self, task, optimizer, kwargs):
        train, test = task
        mk = lambda: FederatedEngine(
            _model(0.2),
            _clients(train, optimizer=optimizer, optimizer_kwargs=kwargs),
            eval_data=(test.x, test.y),
        )
        _assert_equiv(mk(), mk())

    def test_per_client_lr_broadcasts_within_cohort(self, task):
        train, test = task
        configs = [{"lr": 0.01}, {"lr": 0.08}, {"lr": 0.03}]
        mk = lambda: FederatedEngine(
            _model(), _clients(train, configs=configs, optimizer="adam"), eval_data=(test.x, test.y)
        )
        vec = mk()
        assert vectorized_supported(vec.global_model, list(vec.clients.values()))
        _assert_equiv(vec, mk())

    def test_fedprox_with_adam_and_dropout(self, task):
        train, test = task
        mk = lambda: FederatedEngine(
            _model(0.25),
            _clients(train, optimizer="adam", proximal_mu=0.4),
            eval_data=(test.x, test.y),
        )
        _assert_equiv(mk(), mk())

    def test_ragged_shards_mask_optimizer_state(self, task):
        """Clients that exhaust their batches early must freeze m/v/velocity
        exactly like the per-client loop (batch size chosen so shard sizes
        straddle a step boundary)."""
        train, test = task
        for optimizer in ("momentum", "adam"):
            mk = lambda: FederatedEngine(
                _model(), _clients(train, batch_size=7, optimizer=optimizer), eval_data=(test.x, test.y)
            )
            _assert_equiv(mk(), mk())

    def test_optimizer_state_layout_exposed(self, task):
        train, _ = task
        c = _clients(train, n=1)[0]
        assert c.optimizer_state_layout() == ()
        c.optimizer_name = "momentum"
        assert c.optimizer_state_layout() == ("velocity",)
        c.optimizer_name = "adam"
        assert c.optimizer_state_layout() == ("m", "v", "t")
        cfg = c.batched_optimizer_config()
        assert cfg["family"] == "adam" and cfg["beta1"] == Adam().beta1
        c.optimizer_name = Momentum(lr=0.1)  # stateful instance -> unreplayable
        assert c.optimizer_state_layout() is None and c.batched_optimizer_config() is None


class TestCohortPartition:
    def test_mixed_configs_bucket_without_fallback(self, task):
        train, test = task
        configs = [
            {"optimizer": "adam", "batch_size": 8},
            {"optimizer": "sgd", "batch_size": 16},
            {"optimizer": "momentum", "batch_size": 8, "local_epochs": 1},
        ]
        mk = lambda: FederatedEngine(
            _model(0.2), _clients(train, n=9, configs=configs), eval_data=(test.x, test.y)
        )
        vec = mk()
        cohorts = partition_cohorts(vec.global_model, list(vec.clients.values()))
        assert len(cohorts) == 3 and all(c.batched for c in cohorts)
        assert not vectorized_supported(vec.global_model, list(vec.clients.values()))
        _assert_equiv(vec, mk(), rounds=2)

    def test_singleton_cohorts(self, task):
        """Every client a different batch size: one-client sweeps still match."""
        train, test = task
        configs = [{"batch_size": b} for b in (3, 5, 8, 11, 16)]
        mk = lambda: FederatedEngine(
            _model(0.2), _clients(train, n=5, configs=configs), eval_data=(test.x, test.y)
        )
        vec = mk()
        cohorts = partition_cohorts(vec.global_model, list(vec.clients.values()))
        assert len(cohorts) == 5 and all(len(c.indices) == 1 for c in cohorts)
        _assert_equiv(vec, mk())

    def test_all_fallback_on_optimizer_instances(self, task):
        train, test = task
        mk = lambda: FederatedEngine(
            _model(),
            [
                FederatedClient(p, seed=i, optimizer=SGD(lr=0.04), lr=0.04)
                for i, p in enumerate(partition_dirichlet(train, 4, alpha=0.7, seed=3))
            ],
            eval_data=(test.x, test.y),
        )
        vec = mk()
        cohorts = partition_cohorts(vec.global_model, list(vec.clients.values()))
        assert [c.kind for c in cohorts] == ["fallback"]
        # NOTE: a fresh SGD instance per engine keeps the oracle honest (the
        # instance carries no state, unlike momentum/adam instances).
        _assert_equiv(vec, mk())

    def test_zero_sample_clients_form_idle_cohort(self, task):
        train, test = task
        clients = _clients(train, n=3, configs=[{"optimizer": "adam"}])
        empty = FederatedClient(
            ClientData("empty", np.empty((0, 10)), np.empty((0,), dtype=np.int64)),
            batch_size=999,  # config must NOT split batched cohorts
            optimizer="momentum",
            seed=50,
        )
        model = _model()
        cohorts = partition_cohorts(model, clients + [empty])
        kinds = sorted(c.kind for c in cohorts)
        assert kinds == ["batched", "idle"]
        assert vectorized_supported(model, clients + [empty])
        mk = lambda: FederatedEngine(
            _model(), _clients(train, n=3, configs=[{"optimizer": "adam"}]) + [empty], eval_data=(test.x, test.y)
        )
        _assert_equiv(mk(), mk())

    def test_direct_call_rejects_heterogeneous_cohort(self, task):
        train, _ = task
        clients = _clients(train, n=4, configs=[{"optimizer": "adam"}, {"optimizer": "sgd"}])
        with pytest.raises(ValueError, match="partition_cohorts"):
            train_clients_batched(_model(), clients)

    def test_unsupported_model_rejected_by_trainer(self, task):
        train, _ = task
        from repro.nn import make_tiny_cnn

        with pytest.raises(ValueError, match="Dense"):
            train_clients_batched(make_tiny_cnn((4, 4, 1), 2, filters=(2,), seed=0), _clients(train, n=2))


class TestDropoutStreams:
    def test_global_dropout_state_untouched_by_batched_round(self, task):
        """The batched replay clones the mask streams; the global model's own
        Dropout generators must stay at their pre-round position (exactly
        like per-client model clones in the legacy loop)."""
        train, test = task
        engine = FederatedEngine(_model(0.3), _clients(train), eval_data=(test.x, test.y))
        drop_layers = [l for l in engine.global_model.layers if type(l).__name__ == "Dropout"]
        before = [l._rng.bit_generator.state for l in drop_layers]
        engine.run_round(0)
        after = [l._rng.bit_generator.state for l in drop_layers]
        assert before == after

    def test_mixed_scalar_batched_rounds_identical(self, task):
        """legacy->batched->legacy must equal pure-legacy: mask stream
        positions survive switching execution paths mid-training."""
        train, test = task
        mk = lambda: FederatedEngine(_model(0.3), _clients(train, optimizer="adam"), eval_data=(test.x, test.y))
        mixed, pure = mk(), mk()
        mixed.run_round_legacy(0)
        pure.run_round_legacy(0)
        mixed.run_round(1)
        pure.run_round_legacy(1)
        mixed.run_round_legacy(2)
        pure.run_round_legacy(2)
        np.testing.assert_allclose(
            mixed.global_model.get_flat_weights(), pure.global_model.get_flat_weights(), atol=1e-9
        )

    def test_zero_rate_dropout_draws_nothing(self, task):
        """A rate-0 Dropout layer consumes no RNG in either path (make_mlp
        omits the layer at rate 0, so build the stack explicitly)."""
        train, test = task
        from repro.nn.layers import Dense, Dropout
        from repro.nn.model import Sequential

        def explicit():
            return Sequential(
                [Dense(12, activation="relu"), Dropout(0.0), Dense(4)], input_shape=(10,), seed=0
            )

        vec = FederatedEngine(explicit(), _clients(train), eval_data=(test.x, test.y))
        leg = FederatedEngine(explicit(), _clients(train), eval_data=(test.x, test.y))
        rv, rl = vec.run_round(0), leg.run_round_legacy(0)
        assert rv.participants == rl.participants
        np.testing.assert_allclose(
            vec.global_model.get_flat_weights(), leg.global_model.get_flat_weights(), atol=1e-9
        )


class TestRngPoolLru:
    def test_pool_is_capped_and_eviction_preserves_streams(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_RNG_POOL", OrderedDict())
        monkeypatch.setattr(engine_mod, "_RNG_POOL_MAX", 4)
        for seed in range(10):
            engine_mod._pooled_rng(seed)
        assert len(engine_mod._RNG_POOL) == 4
        assert list(engine_mod._RNG_POOL) == [6, 7, 8, 9]
        # Seed 0 was evicted: re-entry must restart the exact stream a fresh
        # default_rng(0) produces, and reuse must restart it again.
        first = engine_mod._pooled_rng(0).random(8)
        np.testing.assert_array_equal(first, np.random.default_rng(0).random(8))
        np.testing.assert_array_equal(engine_mod._pooled_rng(0).random(8), first)

    def test_recently_used_seed_survives(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_RNG_POOL", OrderedDict())
        monkeypatch.setattr(engine_mod, "_RNG_POOL_MAX", 3)
        for seed in (1, 2, 3):
            engine_mod._pooled_rng(seed)
        engine_mod._pooled_rng(1)  # touch -> most recent
        engine_mod._pooled_rng(4)  # evicts 2, not 1
        assert set(engine_mod._RNG_POOL) == {1, 3, 4}

    def test_long_run_with_fresh_seeds_stays_bounded(self, task, monkeypatch):
        monkeypatch.setattr(engine_mod, "_RNG_POOL", OrderedDict())
        monkeypatch.setattr(engine_mod, "_RNG_POOL_MAX", 8)
        train, test = task
        clients = _clients(train, n=4)
        engine = FederatedEngine(_model(), clients, eval_data=(test.x, test.y))
        for r in range(5):
            for i, c in enumerate(clients):
                c.seed = 100 * r + i  # fresh seeds every round
            engine.run_round(r)
        assert len(engine_mod._RNG_POOL) <= 8


class TestHypothesisEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        optimizers=st.lists(st.sampled_from(["sgd", "momentum", "adam"]), min_size=2, max_size=4),
        batch_sizes=st.lists(st.sampled_from([3, 6, 16]), min_size=2, max_size=4),
        dropout=st.sampled_from([0.0, 0.3]),
        epochs=st.integers(min_value=1, max_value=2),
        mu=st.sampled_from([0.0, 0.25]),
    )
    def test_random_mixed_fleets_match_legacy(self, optimizers, batch_sizes, dropout, epochs, mu):
        ds = make_gaussian_blobs(120, 6, 3, cluster_std=1.1, seed=7)
        n = max(len(optimizers), len(batch_sizes))
        parts = partition_iid(ds, n, seed=5)

        def mk():
            clients = [
                FederatedClient(
                    p,
                    local_epochs=epochs,
                    batch_size=batch_sizes[i % len(batch_sizes)],
                    lr=0.03 + 0.01 * i,
                    optimizer=optimizers[i % len(optimizers)],
                    proximal_mu=mu,
                    seed=i,
                )
                for i, p in enumerate(parts)
            ]
            return FederatedEngine(make_mlp(6, 3, hidden=(8,), dropout=dropout, seed=0), clients)

        vec, leg = mk(), mk()
        rv, rl = vec.run_round(0), leg.run_round_legacy(0)
        assert rv.participants == rl.participants
        assert np.isclose(rv.train_loss, rl.train_loss, atol=1e-9)
        np.testing.assert_allclose(
            vec.global_model.get_flat_weights(), leg.global_model.get_flat_weights(), atol=1e-9
        )
