"""Focused tests for runtime/offload.py: split decisions and marketplace
placement, including tie-breaking — previously the least-covered runtime
module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import NetworkCondition, NetworkType, get_profile
from repro.exchange import from_sequential
from repro.nn import make_mlp, make_tiny_cnn
from repro.runtime import OffloadBid, OffloadMarketplace, find_best_split


def _wifi():
    return NetworkCondition.of(NetworkType.WIFI)


class TestPlaceWorkload:
    def test_tie_breaks_to_first_registered_bid(self):
        """Identical offers: strict '<' comparison keeps the earliest bidder."""
        market = OffloadMarketplace()
        for name in ("first", "second", "third"):
            market.register_bid(OffloadBid(name, get_profile("edge-server"), 0.01, _wifi()))
        for objective in ("latency", "price"):
            decision = market.place_workload(1e9, 1e4, objective=objective)
            assert decision.device_id == "first"

    def test_tie_break_is_registration_order_not_name_order(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("zzz", get_profile("edge-server"), 0.01, _wifi()))
        market.register_bid(OffloadBid("aaa", get_profile("edge-server"), 0.01, _wifi()))
        assert market.place_workload(1e9, 1e4).device_id == "zzz"

    def test_reregistering_updates_bid_in_place(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("dev", get_profile("edge-server"), 0.01, _wifi()))
        market.register_bid(OffloadBid("dev", get_profile("edge-server"), 5.0, _wifi()))
        decision = market.place_workload(1e9, 1e4, objective="price")
        assert decision.price == pytest.approx(5.0 * 1e9 / 1e9)

    def test_max_price_is_inclusive(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("dev", get_profile("edge-server"), 1.0, _wifi()))
        exact_price = 1.0 * 1e9 / 1e9
        assert market.place_workload(1e9, 1e4, max_price=exact_price) is not None
        assert market.place_workload(1e9, 1e4, max_price=exact_price * 0.999) is None

    def test_unavailable_and_offline_bidders_skipped(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("busy", get_profile("edge-server"), 0.01, _wifi(), available=False))
        market.register_bid(OffloadBid("island", get_profile("edge-server"), 0.01, NetworkCondition.of(NetworkType.OFFLINE)))
        market.register_bid(OffloadBid("up", get_profile("phone-mid"), 0.01, _wifi()))
        assert market.place_workload(1e9, 1e4).device_id == "up"

    def test_withdraw_removes_bidder(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("dev", get_profile("edge-server"), 0.01, _wifi()))
        market.withdraw("dev")
        market.withdraw("dev")  # idempotent
        assert market.place_workload(1e9, 1e4) is None

    def test_latency_objective_includes_transfer(self):
        """A fast device behind a slow link loses to a slower local one."""
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("remote", get_profile("cloud"), 0.01, NetworkCondition.of(NetworkType.LPWAN)))
        market.register_bid(OffloadBid("local", get_profile("phone-mid"), 0.01, _wifi()))
        decision = market.place_workload(1e9, 1e6, objective="latency")
        assert decision.device_id == "local"
        assert decision.latency_s == pytest.approx(decision.transfer_s + decision.compute_s)

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError):
            OffloadMarketplace().place_workload(1e9, 1e4, objective="karma")

    def test_payouts_accumulate_over_ledger(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("dev", get_profile("edge-server"), 2.0, _wifi()))
        for _ in range(3):
            market.place_workload(5e8, 1e3)
        payouts = market.payouts()
        assert payouts == {"dev": pytest.approx(3 * 2.0 * 5e8 / 1e9)}
        assert len(market.ledger) == 3


class TestFindBestSplit:
    def _graph(self):
        return from_sequential(make_tiny_cnn((12, 12, 1), 4, filters=(4, 8), dense_width=16, seed=0))

    def test_total_never_worse_than_pure_strategies(self):
        decision = find_best_split(
            self._graph(), get_profile("mcu-m4"), get_profile("cloud"), NetworkCondition.of(NetworkType.CELLULAR)
        )
        assert decision.total_latency_s <= decision.all_edge_latency_s + 1e-12
        assert decision.total_latency_s <= decision.all_cloud_latency_s + 1e-12
        assert decision.speedup_vs_edge() >= 1.0 - 1e-9
        assert decision.speedup_vs_cloud() >= 1.0 - 1e-9

    def test_all_cloud_when_edge_is_hopeless(self):
        """A crippled edge device over a fast link offloads everything."""
        slow_edge = get_profile("mcu-m4").with_overrides(peak_flops=1e3)
        decision = find_best_split(self._graph(), slow_edge, get_profile("cloud"), _wifi())
        assert decision.split_after == -1
        assert decision.edge_latency_s == 0.0

    def test_all_edge_when_network_is_hopeless(self):
        decision = find_best_split(
            self._graph(), get_profile("phone-flagship"), get_profile("cloud"), NetworkCondition.of(NetworkType.LPWAN)
        )
        assert decision.split_after == len(self._graph()) - 1
        assert decision.transfer_s == 0.0
        assert decision.cloud_latency_s == 0.0

    def test_mlp_split_bounds_and_edge_monotonicity(self):
        graph = from_sequential(make_mlp(16, 4, hidden=(32, 16), seed=1))
        decision = find_best_split(
            graph, get_profile("phone-mid"), get_profile("cloud"), NetworkCondition.of(NetworkType.CELLULAR)
        )
        assert -1 <= decision.split_after < len(graph)
        assert decision.total_latency_s == pytest.approx(
            decision.edge_latency_s + decision.transfer_s + decision.cloud_latency_s
        )
