"""Fault-injection suite for the sharded backend's recovery machinery.

The contract: a worker that raises, hangs or dies mid-task never produces a
partial merge.  The runner retries the shard on a fresh pool and finally
re-executes it deterministically in-process; only when *every* shard has a
result does the barrier merge run, and the recovery is flagged
(``FleetServeReport.shard_recoveries`` / ``RoundResult.shard_recoveries``)
while staying byte-identical to a fault-free batched run.  A genuinely
poisoned shard (fails even in-process) propagates its exception with the
parent's ledgers, planes and monitors untouched.

Faults are injected via the ``REPRO_SHARD_FAULT`` env var (parsed inside
the worker task): ``"<shard>:<mode>[:<scope>]"`` with mode ``raise`` /
``hang`` / ``exit``.  The default ``worker`` scope only fires in pool
workers, so the in-process fallback recovers; scope ``any`` poisons the
in-process retry too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.sharded import FAULT_ENV, ShardedFleetRunner

from _sharded_worlds import (
    federated_world as _federated_world,
    run_rounds as _run_rounds,
    serving_snapshot as _serving_snapshot,
    serving_world as _serving_world,
)

FAULT_MODES = ("raise", "hang", "exit")


def _fault_runner(backend="pickle"):
    # Short timeout keeps the hang tests fast; retries=0 goes straight from
    # the failed pool pass to the deterministic in-process fallback.
    return ShardedFleetRunner(workers=3, backend=backend, timeout_s=4.0, retries=0)


@pytest.mark.parametrize("mode", FAULT_MODES)
def test_serving_recovers_from_worker_fault(mode, monkeypatch):
    base, window = _serving_world(seed=7, n_devices=12)
    report_base = base.serve_fleet("m", window)
    snap_base = _serving_snapshot(base)

    sharded, window_s = _serving_world(seed=7, n_devices=12)
    sharded.shard_runner = _fault_runner()
    monkeypatch.setenv(FAULT_ENV, f"1:{mode}")
    report_sharded = sharded.serve_fleet("m", window_s, engine="sharded")

    assert report_sharded.shard_recoveries > 0  # the recovery is flagged...
    stripped = report_sharded.as_dict()
    stripped["shard_recoveries"] = 0
    assert stripped == report_base.as_dict()  # ...and nothing else differs
    assert _serving_snapshot(sharded) == snap_base


@pytest.mark.parametrize("mode", ("raise", "exit"))
def test_serving_shared_backend_restores_planes_before_retry(mode, monkeypatch):
    """Shared-memory shards may have written admission results before dying;
    recovery must reset those rows so the in-process re-execution starts
    from the pre-dispatch planes."""
    base, window = _serving_world(seed=19, n_devices=14)
    report_base = base.serve_fleet("m", window)
    snap_base = _serving_snapshot(base)

    sharded, window_s = _serving_world(seed=19, n_devices=14)
    sharded.shard_runner = _fault_runner(backend="shared")
    monkeypatch.setenv(FAULT_ENV, f"1:{mode}")
    report_sharded = sharded.serve_fleet("m", window_s, engine="sharded")
    assert report_sharded.shard_recoveries > 0
    assert _serving_snapshot(sharded) == snap_base
    assert report_sharded.served == report_base.served


def test_serving_poisoned_shard_never_merges_partially(monkeypatch):
    """Scope ``any`` poisons the in-process retry too: the call raises and
    the parent world (ledgers, planes, monitors) is exactly untouched."""
    sharded, window = _serving_world(seed=23, n_devices=12)
    snap_before = _serving_snapshot(sharded)
    sharded.shard_runner = _fault_runner()
    monkeypatch.setenv(FAULT_ENV, "1:raise:any")
    with pytest.raises(RuntimeError, match="injected fault"):
        sharded.serve_fleet("m", window, engine="sharded")
    assert _serving_snapshot(sharded) == snap_before


def test_serving_poisoned_shared_shard_restores_planes(monkeypatch):
    sharded, window = _serving_world(seed=29, n_devices=12)
    snap_before = _serving_snapshot(sharded)
    sharded.shard_runner = _fault_runner(backend="shared")
    monkeypatch.setenv(FAULT_ENV, "0:raise:any")
    with pytest.raises(RuntimeError, match="injected fault"):
        sharded.serve_fleet("m", window, engine="sharded")
    assert _serving_snapshot(sharded) == snap_before


def test_serving_retry_pass_recovers_transient_fault(monkeypatch):
    """With retries=1 a shard that only fails in pool workers is re-run on a
    fresh pool; because the env fault is persistent here the retry also
    fails and the in-process fallback finishes the job — both paths count
    as one recovery."""
    base, window = _serving_world(seed=31, n_devices=12)
    report_base = base.serve_fleet("m", window)

    sharded, window_s = _serving_world(seed=31, n_devices=12)
    sharded.shard_runner = ShardedFleetRunner(workers=3, backend="pickle", timeout_s=4.0, retries=1)
    monkeypatch.setenv(FAULT_ENV, "2:raise")
    report_sharded = sharded.serve_fleet("m", window_s, engine="sharded")
    assert report_sharded.shard_recoveries == 1
    assert report_sharded.served == report_base.served


@pytest.mark.parametrize("mode", FAULT_MODES)
def test_federated_recovers_from_worker_fault(mode, monkeypatch):
    base = _federated_world(seed=9, n_clients=12)
    results_base = _run_rounds(base, 1)

    sharded = _federated_world(seed=9, n_clients=12)
    sharded.shard_runner = _fault_runner()
    monkeypatch.setenv(FAULT_ENV, f"1:{mode}")
    results_sharded = _run_rounds(sharded, 1, engine="sharded")

    assert results_sharded[0].shard_recoveries > 0
    assert (
        sharded.global_model.get_flat_weights().tobytes()
        == base.global_model.get_flat_weights().tobytes()
    )
    stripped = results_sharded[0].as_dict()
    stripped["shard_recoveries"] = 0
    assert stripped == results_base[0].as_dict()


def test_federated_poisoned_cohort_propagates_without_update(monkeypatch):
    sharded = _federated_world(seed=13, n_clients=12)
    weights_before = sharded.global_model.get_flat_weights().tobytes()
    sharded.shard_runner = _fault_runner()
    monkeypatch.setenv(FAULT_ENV, "0:raise:any")
    with pytest.raises(RuntimeError, match="injected fault"):
        sharded.run_round(0, engine="sharded")
    # The round never reached aggregation: global weights are untouched.
    assert sharded.global_model.get_flat_weights().tobytes() == weights_before
    assert sharded.history == []
