"""Differential harness for the sharded fleet backend (ROADMAP item 2).

The standing invariant extends to process boundaries: serving a fleet window
or running a federated round through ``engine="sharded"`` must be
**byte-identical** to ``engine="batched"`` (which in turn matches
``engine="oracle"``) — same MAC-chained ledger entries, same battery /
query-count planes, same drift events, same federated delta stack and
global weights — for every worker count and shard composition.

The hypothesis properties run the full shard/split/merge machinery with
``backend="inline"`` (identical code path minus the pool, so properties
stay fast and deterministic); dedicated tests re-run representative cases
through real worker processes with ``backend="pickle"`` and
``backend="shared"``.

Failing-case reproducer template (fill in from the hypothesis output)::

    runner = ShardedFleetRunner(workers=<W>, backend="inline")
    eng, window = _serving_world(seed=<SEED>, n_devices=<N>)
    eng.shard_runner = runner
    eng.serve_fleet("m", window, engine="sharded")
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dispatch import resolve_engine
from repro.runtime.sharded import ShardedFleetRunner, shard_row_groups

from _sharded_worlds import (
    federated_world as _federated_world,
    run_rounds as _run_rounds,
    serving_snapshot as _serving_snapshot,
    serving_world as _serving_world,
)

WORKER_COUNTS = (1, 2, 4, 7)


def _assert_serving_identical(seed, n_devices, workers, backend, compile_plan=True):
    base, window = _serving_world(seed, n_devices, compile_plan=compile_plan)
    report_base = base.serve_fleet("m", window)
    snap_base = _serving_snapshot(base)

    sharded, window_s = _serving_world(seed, n_devices, compile_plan=compile_plan)
    sharded.shard_runner = ShardedFleetRunner(workers=workers, backend=backend)
    report_sharded = sharded.serve_fleet("m", window_s, engine="sharded")
    snap_sharded = _serving_snapshot(sharded)

    assert report_sharded.as_dict() == report_base.as_dict()
    assert report_sharded.per_device == report_base.per_device
    assert snap_sharded == snap_base


# ---------------------------------------------------------------------------
# shard geometry
# ---------------------------------------------------------------------------


def test_shard_row_groups_cover_and_balance():
    for n in (0, 1, 2, 5, 7, 16, 200):
        for w in (1, 2, 4, 7, 300):
            groups = shard_row_groups(n, w)
            if n == 0:
                assert groups == []
                continue
            assert len(groups) == min(w, n)
            assert all(len(g) > 0 for g in groups)
            sizes = {len(g) for g in groups}
            assert max(sizes) - min(sizes) <= 1  # balanced, ragged-safe
            assert np.array_equal(np.concatenate(groups), np.arange(n))


def test_dispatch_sharded_is_per_surface_opt_in():
    assert resolve_engine("sharded", None, extra=("sharded",)) == "sharded"
    with pytest.raises(ValueError):
        resolve_engine("sharded", None)  # surfaces without opt-in reject it


# ---------------------------------------------------------------------------
# serving equivalence
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_devices=st.integers(1, 200),
    workers=st.sampled_from(WORKER_COUNTS),
)
def test_sharded_serving_matches_batched(seed, n_devices, workers):
    """Random fleets (sizes 1-200, mixed profiles/net kinds, ragged shards,
    some devices without ledgers/monitors): report, per-device stats, ledger
    MAC chains, battery/counter planes, drift events and fleet summaries are
    byte-identical to the batched engine at every worker count."""
    _assert_serving_identical(seed, n_devices, workers, backend="inline")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16), workers=st.sampled_from((2, 7)))
def test_sharded_serving_without_compiled_plan(seed, workers):
    _assert_serving_identical(seed, 17, workers, backend="inline", compile_plan=False)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sharded_serving_real_processes(workers):
    """Representative cases through real pool workers (chunked pickling)."""
    _assert_serving_identical(seed=7, n_devices=19, workers=workers, backend="pickle")


def test_sharded_serving_shared_memory_backend():
    _assert_serving_identical(seed=11, n_devices=23, workers=4, backend="shared")


def test_sharded_serving_200_devices_real_processes():
    _assert_serving_identical(seed=3, n_devices=200, workers=4, backend="pickle")


def test_sharded_matches_oracle_ledgers():
    """The sharded merge equals the per-device oracle loop too (all three
    engines meter through record_batch, so the chains line up exactly)."""
    oracle, window = _serving_world(seed=5, n_devices=29)
    oracle.serve_fleet("m", window, engine="oracle")
    snap_oracle = _serving_snapshot(oracle)

    sharded, window_s = _serving_world(seed=5, n_devices=29)
    sharded.shard_runner = ShardedFleetRunner(workers=4, backend="inline")
    sharded.serve_fleet("m", window_s, engine="sharded")
    assert _serving_snapshot(sharded) == snap_oracle


def test_sharded_runner_via_workers_kwarg():
    """serve_fleet builds a default runner from workers= when none is set."""
    base, window = _serving_world(seed=13, n_devices=9)
    report_base = base.serve_fleet("m", window)
    sharded, window_s = _serving_world(seed=13, n_devices=9)
    report_sharded = sharded.serve_fleet("m", window_s, engine="sharded", workers=2)
    assert report_sharded.as_dict() == report_base.as_dict()


def test_sharded_unreplayable_plan_falls_back_single_process():
    """A plan installed without recorded lowering options (direct plans[...]
    assignment) cannot be rebuilt in a worker; the runner degrades to the
    in-process sweep and results stay identical."""
    base, window = _serving_world(seed=17, n_devices=11, compile_plan=True)
    report_base = base.serve_fleet("m", window)
    snap_base = _serving_snapshot(base)

    sharded, window_s = _serving_world(seed=17, n_devices=11, compile_plan=True)
    sharded._plan_options.clear()  # simulate a hand-installed plan
    sharded.shard_runner = ShardedFleetRunner(workers=4, backend="pickle")
    report_sharded = sharded.serve_fleet("m", window_s, engine="sharded")
    assert report_sharded.as_dict() == report_base.as_dict()
    assert _serving_snapshot(sharded) == snap_base


# ---------------------------------------------------------------------------
# federated equivalence
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_clients=st.integers(1, 24),
    workers=st.sampled_from(WORKER_COUNTS),
)
def test_sharded_federated_matches_batched(seed, n_clients, workers):
    """Sharded rounds (cohorts distributed whole) produce bit-identical
    global weights and round metrics vs the in-process batched engine."""
    base = _federated_world(seed, n_clients)
    results_base = _run_rounds(base, 2)

    sharded = _federated_world(seed, n_clients)
    sharded.shard_runner = ShardedFleetRunner(workers=workers, backend="inline")
    results_sharded = _run_rounds(sharded, 2, engine="sharded")

    assert (
        sharded.global_model.get_flat_weights().tobytes()
        == base.global_model.get_flat_weights().tobytes()
    )
    for a, b in zip(results_sharded, results_base):
        assert a.as_dict() == b.as_dict()
        assert a.participants == b.participants


def test_sharded_federated_real_processes():
    base = _federated_world(seed=9, n_clients=12)
    results_base = _run_rounds(base, 3)
    sharded = _federated_world(seed=9, n_clients=12)
    sharded.shard_runner = ShardedFleetRunner(workers=4, backend="pickle")
    results_sharded = _run_rounds(sharded, 3, engine="sharded")
    assert (
        sharded.global_model.get_flat_weights().tobytes()
        == base.global_model.get_flat_weights().tobytes()
    )
    assert [r.as_dict() for r in results_sharded] == [r.as_dict() for r in results_base]


def test_sharded_federated_close_to_oracle():
    """The oracle (per-client loop) is float-tolerance equivalent to the
    batched sweep; the sharded path inherits that bound transitively."""
    oracle = _federated_world(seed=21, n_clients=10)
    _run_rounds(oracle, 2, engine="oracle")
    sharded = _federated_world(seed=21, n_clients=10)
    sharded.shard_runner = ShardedFleetRunner(workers=3, backend="inline")
    _run_rounds(sharded, 2, engine="sharded")
    np.testing.assert_allclose(
        sharded.global_model.get_flat_weights(),
        oracle.global_model.get_flat_weights(),
        rtol=1e-9,
        atol=1e-10,
    )


def test_sharded_fallback_cohort_optimizer_state_persists():
    """Clients with stateful optimizer instances (fallback cohorts) train in
    the parent so cross-round momentum state persists; multi-round sharded
    runs stay bit-identical to batched."""
    from repro.nn.optimizers import Momentum

    def build():
        engine = _federated_world(seed=33, n_clients=8)
        # Give two clients shared stateful optimizer instances -> fallback.
        for cid in list(engine.clients)[:2]:
            engine.clients[cid].optimizer_name = Momentum(lr=0.05, momentum=0.9)
        return engine

    base = build()
    results_base = _run_rounds(base, 3)
    sharded = build()
    sharded.shard_runner = ShardedFleetRunner(workers=4, backend="inline")
    results_sharded = _run_rounds(sharded, 3, engine="sharded")
    assert (
        sharded.global_model.get_flat_weights().tobytes()
        == base.global_model.get_flat_weights().tobytes()
    )
    assert [r.as_dict() for r in results_sharded] == [r.as_dict() for r in results_base]


# ---------------------------------------------------------------------------
# determinism regression
# ---------------------------------------------------------------------------


def test_sharded_determinism_across_runs_and_worker_counts():
    """The same seeded sharded round, run 3x at each of several worker
    counts, yields bit-identical ledger head MACs and delta bytes.

    Reproducer template for a failure::

        eng = _federated_world(seed=41, n_clients=9)
        eng.shard_runner = ShardedFleetRunner(workers=<W>, backend="inline")
        eng.run_round(0, engine="sharded")
        print(eng.global_model.get_flat_weights().tobytes().hex()[:64])
    """
    reference_weights = None
    reference_macs = None
    for workers in (1, 2, 3):
        for _repeat in range(3):
            fed = _federated_world(seed=41, n_clients=9)
            fed.shard_runner = ShardedFleetRunner(workers=workers, backend="inline")
            fed.run_round(0, engine="sharded")
            weights = fed.global_model.get_flat_weights().tobytes()

            serve, window = _serving_world(seed=41, n_devices=15)
            serve.shard_runner = ShardedFleetRunner(workers=workers, backend="inline")
            serve.serve_fleet("m", window, engine="sharded")
            macs = {d: ledger.head_mac() for d, ledger in serve.ledgers.items()}

            if reference_weights is None:
                reference_weights = weights
                reference_macs = macs
            else:
                assert weights == reference_weights, f"workers={workers} delta bytes diverged"
                assert macs == reference_macs, f"workers={workers} ledger MACs diverged"
