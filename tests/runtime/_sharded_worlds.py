"""Shared deterministic world builders for the sharded-backend test suites."""

from __future__ import annotations

import numpy as np

from repro.billing import BillingBackend, PricingPlan, UsageLedger
from repro.core.serving import ServingEngine
from repro.data import ClientData
from repro.devices import CostModel, Fleet
from repro.federated.client import FederatedClient
from repro.federated.engine import FederatedEngine
from repro.nn import make_mlp
from repro.observability import EdgeMonitor


def serving_world(seed: int, n_devices: int, compile_plan: bool = True, quota: int = 40):
    """A fleet + engine + one ragged traffic window, fully deterministic.

    Mixed device profiles and network kinds come from ``Fleet.random``;
    every third device has no monitor and every fifth no ledger, so shards
    carry ragged per-device state.
    """
    fleet = Fleet.random(n_devices, seed=seed)
    model = make_mlp(8, 4, hidden=(16,), seed=seed)
    billing = BillingBackend()
    billing.register_plan(PricingPlan(model_name="m"))
    rng = np.random.default_rng(seed + 1)
    ledgers, monitors = {}, {}
    for i, device in enumerate(fleet):
        if i % 5 != 4:
            ledger = UsageLedger(device.device_id, billing.enroll_device(device.device_id))
            ledger.add_grant(
                billing.sell_package(device.device_id, "m", quota),
                backend_key=billing.signing_key(),
            )
            ledgers[device.device_id] = ledger
        if i % 3 != 2:
            monitors[device.device_id] = EdgeMonitor(
                device.device_id, reference_inputs=rng.normal(size=(60, 8))
            )
    engine = ServingEngine(
        fleet, cost_model=CostModel(), models={"m": model}, ledgers=ledgers, monitors=monitors
    )
    if compile_plan:
        engine.compile_model("m")
    window = {
        device.device_id: rng.normal(size=(int(rng.integers(0, 9)), 8)) for device in fleet
    }
    return engine, window


def serving_snapshot(engine):
    """Everything the barrier merge could get wrong, in comparable form."""
    state = engine.fleet.state
    return {
        "entries": {
            device_id: [
                (e.index, e.model_name, e.count, e.timestamp, e.grant_id, e.prev_mac, e.mac)
                for e in ledger.entries
            ]
            for device_id, ledger in engine.ledgers.items()
        },
        "used": {d: ledger.used() for d, ledger in engine.ledgers.items()},
        "level_j": state.level_j.tobytes(),
        "query_count": state.query_count.tobytes(),
        "drift_events": {d: m.drift_events for d, m in engine.monitors.items()},
        "summary": engine.fleet.summary(),
    }


def federated_world(seed: int, n_clients: int) -> FederatedEngine:
    """Mixed-optimizer / mixed-config clients => several batched cohorts."""
    rng = np.random.default_rng(seed)
    clients = []
    for i in range(n_clients):
        n = int(rng.integers(0, 20))  # zero-sample clients hit the idle cohort
        x = rng.normal(size=(n, 6))
        y = rng.integers(0, 3, n)
        clients.append(
            FederatedClient(
                ClientData(f"c{i}", x, y),
                seed=seed + i,
                optimizer=["sgd", "momentum", "adam"][i % 3],
                batch_size=4 if i % 2 else 8,
                local_epochs=1 + (i % 2),
            )
        )
    model = make_mlp(6, 3, hidden=(10,), seed=seed)
    return FederatedEngine(model, clients)


def run_rounds(fed, n_rounds, **kwargs):
    return [fed.run_round(r, **kwargs) for r in range(n_rounds)]
