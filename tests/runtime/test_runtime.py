"""Tests for modules, sandbox, pipelines, orchestration and offloading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import Fleet, NetworkCondition, NetworkType, get_profile
from repro.exchange import Compiler, from_sequential
from repro.nn import make_mlp
from repro.runtime import (
    Capability,
    ConditionalStage,
    Module,
    OffloadBid,
    OffloadMarketplace,
    Orchestrator,
    Pipeline,
    RolloutPlan,
    Sandbox,
    SandboxViolation,
    argmax_module,
    find_best_split,
    graph_module,
    model_module,
    normalize_module,
    softmax_module,
    threshold_module,
)


class TestModulesAndSandbox:
    def test_normalize_module(self, rng):
        x = rng.normal(loc=5.0, scale=2.0, size=(100, 4))
        module = normalize_module(mean=x.mean(axis=0), std=x.std(axis=0))
        out = module(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_threshold_and_argmax(self):
        assert threshold_module(0.5)(np.array([0.2, 0.7])).tolist() == [0.0, 1.0]
        assert argmax_module()(np.array([[0.1, 0.9], [0.8, 0.2]])).tolist() == [1, 0]

    def test_softmax_module_normalizes(self, rng):
        out = softmax_module()(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_model_module_matches_model(self, trained_mlp, blobs):
        _, test = blobs
        module = model_module(trained_mlp)
        np.testing.assert_allclose(module(test.x[:8]), trained_mlp.forward(test.x[:8]))
        assert module.size_bytes == trained_mlp.num_params() * 4

    def test_graph_module_matches_compiled_graph(self, trained_mlp, blobs):
        _, test = blobs
        artifact = Compiler().compile(from_sequential(trained_mlp), get_profile("phone-mid"), bits=8)
        module = graph_module(artifact.graph)
        ref = trained_mlp.forward(test.x[:16]).argmax(axis=1)
        assert np.mean(module(test.x[:16]).argmax(axis=1) == ref) > 0.9

    def test_module_digest_changes_with_capabilities(self):
        a = Module("m", fn=lambda x: x)
        b = Module("m", fn=lambda x: x, requires=frozenset({Capability.COMPUTE, Capability.NETWORK}))
        assert a.digest() != b.digest()

    def test_sandbox_blocks_missing_capability(self, rng):
        camera_module = Module("camera-reader", fn=lambda x: x, requires=frozenset({Capability.SENSOR_CAMERA}))
        sandbox = Sandbox(granted=(Capability.COMPUTE,), device_id="dev-1")
        assert not sandbox.can_run(camera_module)
        with pytest.raises(SandboxViolation):
            sandbox.run(camera_module, rng.normal(size=(2, 2)))

    def test_sandbox_allows_and_logs(self, rng):
        sandbox = Sandbox(granted=(Capability.COMPUTE,))
        sandbox.run(normalize_module(), rng.normal(size=(3, 2)))
        assert len(sandbox.execution_log) == 1

    def test_sandbox_unknown_capability(self):
        with pytest.raises(ValueError):
            Sandbox(granted=("root",))


class TestPipeline:
    def test_full_pipeline_accuracy(self, trained_mlp, blobs):
        _, test = blobs
        pipeline = Pipeline([model_module(trained_mlp), softmax_module(), argmax_module()], name="clf")
        preds = pipeline.run(test.x)
        assert np.mean(preds == test.y) > 0.9

    def test_cascade_routes_by_confidence(self, trained_mlp, blobs):
        train, test = blobs
        small = make_mlp(12, 4, hidden=(4,), seed=50)
        small.fit(train.x, train.y, epochs=2, lr=0.02)
        cascade = Pipeline(
            [
                ConditionalStage(
                    "escalate",
                    predicate=lambda x: np.linalg.norm(x, axis=1) < np.median(np.linalg.norm(x, axis=1)),
                    if_true=Pipeline([model_module(small)], name="cheap"),
                    if_false=Pipeline([model_module(trained_mlp)], name="accurate"),
                ),
                argmax_module(),
            ],
            name="cascade",
        )
        preds = cascade.run(test.x)
        assert preds.shape == (len(test.x),)
        assert np.mean(preds == test.y) > 0.5

    def test_manifest_and_capabilities(self, trained_mlp):
        pipeline = Pipeline([normalize_module(), model_module(trained_mlp)], name="p")
        manifest = pipeline.manifest()
        assert manifest["stages"] == ["normalize", "fixture_mlp"]
        assert manifest["capabilities"] == ["compute"]
        assert pipeline.size_bytes() > trained_mlp.num_params()

    def test_pipeline_respects_sandbox(self, trained_mlp, blobs):
        _, test = blobs
        net_module = Module("uploader", fn=lambda x: x, requires=frozenset({Capability.NETWORK}))
        pipeline = Pipeline([model_module(trained_mlp), net_module], name="leaky")
        with pytest.raises(SandboxViolation):
            pipeline.run(test.x[:4], sandbox=Sandbox(granted=(Capability.COMPUTE,)))


class TestOrchestration:
    def test_place_everywhere_on_capable_fleet(self, trained_mlp):
        fleet = Fleet.random(25, seed=5)
        orchestrator = Orchestrator(fleet)
        pipeline = Pipeline([model_module(trained_mlp)], name="wake")
        result = orchestrator.place_everywhere(pipeline)
        assert result["placed"] == 25
        assert orchestrator.coverage("wake") == 1.0

    def test_storage_constraint_blocks_placement(self):
        fleet = Fleet.random(5, mix={"mcu-m0": 1.0}, seed=1)
        orchestrator = Orchestrator(fleet)
        huge = Pipeline([Module("blob", fn=lambda x: x, size_bytes=10**9)], name="huge")
        result = orchestrator.place_everywhere(huge)
        assert result["placed"] == 0 and result["failed"] == 5

    def test_capability_constraint_blocks_placement(self, trained_mlp):
        fleet = Fleet.random(3, seed=2)
        orchestrator = Orchestrator(fleet)
        for device in fleet:
            orchestrator.grant_capabilities(device.device_id, (Capability.COMPUTE,))
        needs_network = Pipeline(
            [Module("uplink", fn=lambda x: x, requires=frozenset({Capability.NETWORK}))], name="uplink"
        )
        result = orchestrator.place_everywhere(needs_network)
        assert result["placed"] == 0

    def test_rollout_completes_when_healthy(self, trained_mlp):
        fleet = Fleet.random(20, seed=3)
        orchestrator = Orchestrator(fleet)
        plan = RolloutPlan(orchestrator, Pipeline([model_module(trained_mlp)], name="v2", version="2.0"), stages=[0.1, 0.5, 1.0])
        outcome = plan.execute(lambda devices: True)
        assert outcome["status"] == "completed" and outcome["updated_devices"] == 20

    def test_rollout_rolls_back_on_bad_canary(self, trained_mlp):
        fleet = Fleet.random(20, seed=4)
        orchestrator = Orchestrator(fleet)
        old = Pipeline([model_module(trained_mlp)], name="wake", version="1.0")
        orchestrator.place_everywhere(old)
        new = Pipeline([model_module(trained_mlp)], name="wake-v2", version="2.0")
        plan = RolloutPlan(orchestrator, new, previous_pipeline=old, stages=[0.1, 1.0])
        outcome = plan.execute(lambda devices: False)
        assert outcome["status"] == "rolled_back"
        assert orchestrator.devices_running("wake-v2") == []


class TestOffloading:
    def test_marketplace_prefers_fast_local_server(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("edge", get_profile("edge-server"), 0.01, NetworkCondition.of(NetworkType.WIFI)))
        market.register_bid(OffloadBid("cloud", get_profile("cloud"), 0.001, NetworkCondition.of(NetworkType.CELLULAR)))
        decision = market.place_workload(flops=1e9, payload_bytes=5e6, objective="latency")
        assert decision.device_id == "edge"

    def test_marketplace_price_objective_and_payouts(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("cheap", get_profile("phone-flagship"), 0.001, NetworkCondition.of(NetworkType.WIFI)))
        market.register_bid(OffloadBid("pricey", get_profile("edge-server"), 1.0, NetworkCondition.of(NetworkType.WIFI)))
        decision = market.place_workload(flops=1e9, payload_bytes=1e4, objective="price")
        assert decision.device_id == "cheap"
        assert "cheap" in market.payouts()

    def test_marketplace_skips_offline_bidders(self):
        market = OffloadMarketplace()
        market.register_bid(OffloadBid("island", get_profile("edge-server"), 0.01, NetworkCondition.of(NetworkType.OFFLINE)))
        assert market.place_workload(1e9, 1e4) is None

    def test_split_search_bounds(self, trained_cnn):
        graph = from_sequential(trained_cnn)
        decision = find_best_split(graph, get_profile("mcu-m4"), get_profile("cloud"), NetworkCondition.of(NetworkType.CELLULAR))
        assert -1 <= decision.split_after < len(graph)
        assert decision.total_latency_s <= decision.all_edge_latency_s + 1e-12
        assert decision.total_latency_s <= decision.all_cloud_latency_s + 1e-12

    def test_split_prefers_edge_when_offline_ish(self, trained_cnn):
        graph = from_sequential(trained_cnn)
        slow = NetworkCondition.of(NetworkType.LPWAN)
        decision = find_best_split(graph, get_profile("phone-flagship"), get_profile("cloud"), slow)
        # With a very slow uplink, running everything on a capable edge device wins.
        assert decision.split_after == len(graph) - 1


class TestBatchedPipelineExecution:
    def test_run_many_matches_per_window_run(self, trained_mlp, blobs):
        _, test = blobs
        pipeline = Pipeline([model_module(trained_mlp), softmax_module(), argmax_module()], name="clf")
        windows = [test.x[:5], test.x[5:5], test.x[5:12], test.x[12:13]]
        outs = pipeline.run_many(windows)
        assert len(outs) == len(windows)
        for w, out in zip(windows, outs):
            np.testing.assert_array_equal(out, pipeline.run(w))

    def test_run_many_through_compiled_graph_module(self, trained_mlp, blobs):
        _, test = blobs
        artifact = Compiler().compile(from_sequential(trained_mlp), get_profile("phone-mid"), bits=8)
        pipeline = Pipeline([graph_module(artifact.graph), argmax_module()], name="compiled-clf")
        windows = [test.x[:7], test.x[7:10]]
        outs = pipeline.run_many(windows)
        for w, out in zip(windows, outs):
            np.testing.assert_array_equal(out, pipeline.run(w))

    def test_run_many_all_empty_windows(self, trained_mlp):
        pipeline = Pipeline([model_module(trained_mlp)], name="clf")
        outs = pipeline.run_many([np.empty((0, 12)), np.empty((0, 12))])
        assert all(o.shape == (0, 4) for o in outs)

    def test_broadcast_runs_hosting_devices_in_one_sweep(self, trained_mlp, blobs):
        _, test = blobs
        fleet = Fleet.random(8, seed=9)
        orchestrator = Orchestrator(fleet)
        pipeline = Pipeline([model_module(trained_mlp), argmax_module()], name="wake")
        orchestrator.place_everywhere(pipeline)
        device_ids = [d.device_id for d in fleet]
        inputs = {d: test.x[i * 3 : i * 3 + 3] for i, d in enumerate(device_ids)}
        outputs = orchestrator.broadcast(pipeline, inputs)
        assert set(outputs) == set(device_ids)
        for d in device_ids:
            np.testing.assert_array_equal(outputs[d], pipeline.run(inputs[d]))

    def test_broadcast_skips_devices_without_capabilities_or_input(self, trained_mlp, blobs):
        _, test = blobs
        fleet = Fleet.random(4, seed=11)
        orchestrator = Orchestrator(fleet)
        needs_net = Module("uplink", fn=lambda x: x, requires=frozenset({Capability.NETWORK}))
        pipeline = Pipeline([model_module(trained_mlp), needs_net], name="uplink-clf")
        orchestrator.place_everywhere(pipeline)
        ids = [d.device_id for d in fleet]
        granted, denied, no_input = ids[0], ids[1], ids[2]
        orchestrator.grant_capabilities(granted, (Capability.COMPUTE, Capability.NETWORK))
        orchestrator.grant_capabilities(denied, (Capability.COMPUTE,))
        inputs = {d: test.x[:2] for d in ids if d != no_input}
        outputs = orchestrator.broadcast(pipeline, inputs)
        assert granted in outputs and ids[3] in outputs  # no sandbox: unrestricted
        assert denied not in outputs and no_input not in outputs

    def test_run_many_falls_back_for_data_dependent_quantization(self, trained_mlp, blobs):
        """Stacking must never let one window's data change another's logits."""
        from repro.exchange import PassPipeline, annotate_quantization, from_sequential

        _, test = blobs
        graph = annotate_quantization(
            PassPipeline.standard_inference().run(from_sequential(trained_mlp)),
            bits=8,
            activation_bits=8,
        )
        pipeline = Pipeline([graph_module(graph)], name="actquant")
        assert not pipeline.stackable()
        windows = [test.x[:4], 50.0 * test.x[4:8]]  # second window would skew shared stats
        outs = pipeline.run_many(windows)
        for w, out in zip(windows, outs):
            np.testing.assert_array_equal(out, pipeline.run(w))

    def test_broadcast_preserves_sandbox_audit_log(self, trained_mlp, blobs):
        _, test = blobs
        fleet = Fleet.random(2, seed=13)
        orchestrator = Orchestrator(fleet)
        pipeline = Pipeline([model_module(trained_mlp), argmax_module()], name="audited")
        orchestrator.place_everywhere(pipeline)
        ids = [d.device_id for d in fleet]
        sandbox = orchestrator.grant_capabilities(ids[0], (Capability.COMPUTE,))
        outputs = orchestrator.broadcast(pipeline, {d: test.x[:3] for d in ids})
        assert set(outputs) == set(ids)
        assert [e["module"] for e in sandbox.execution_log] == ["fixture_mlp", "argmax"]
        assert all(e["n"] == 3 for e in sandbox.execution_log)

    def test_run_many_cascade_falls_back_to_per_window(self, trained_mlp, blobs):
        """Cascade predicates may be batch-dependent (e.g. median-based), so
        cascades are non-stackable by default and run window by window."""
        train, test = blobs
        small = make_mlp(12, 4, hidden=(4,), seed=51)
        small.fit(train.x, train.y, epochs=1, lr=0.02)
        cascade = Pipeline(
            [
                ConditionalStage(
                    "escalate",
                    predicate=lambda x: np.linalg.norm(x, axis=1) < np.median(np.linalg.norm(x, axis=1)),
                    if_true=Pipeline([model_module(small)], name="cheap"),
                    if_false=Pipeline([model_module(trained_mlp)], name="accurate"),
                ),
            ],
            name="cascade",
        )
        assert not cascade.stackable()
        windows = [test.x[:6], np.empty((0, 12)), test.x[6:16]]
        outs = cascade.run_many(windows)
        assert outs[1].shape == (0, 4)
        np.testing.assert_array_equal(outs[0], cascade.run(windows[0]))
        np.testing.assert_array_equal(outs[2], cascade.run(windows[2]))

    def test_broadcast_mixed_sandboxed_and_free_devices(self, trained_mlp, blobs):
        _, test = blobs
        fleet = Fleet.random(3, seed=17)
        orchestrator = Orchestrator(fleet)
        pipeline = Pipeline([model_module(trained_mlp)], name="mixed")
        orchestrator.place_everywhere(pipeline)
        ids = [d.device_id for d in fleet]
        sandbox = orchestrator.grant_capabilities(ids[1], (Capability.COMPUTE,))
        inputs = {d: test.x[i * 2 : i * 2 + 2] for i, d in enumerate(ids)}
        outputs = orchestrator.broadcast(pipeline, inputs)
        assert set(outputs) == set(ids)
        for d in ids:
            np.testing.assert_array_equal(outputs[d], pipeline.run(inputs[d]))
        # the sandboxed device's execution went through its own Sandbox
        assert [e["module"] for e in sandbox.execution_log] == ["fixture_mlp"]
