"""Tests for the closed-loop model lifecycle (drift → retrain → canary → promote)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PlatformConfig, TinyMLOpsPlatform
from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.devices import Fleet
from repro.lifecycle import (
    GateCheck,
    LifecycleConfig,
    bad_architecture_candidate,
    default_gates,
    degraded_candidate,
    oversized_candidate,
)
from repro.nn import make_mlp


def build_world(seed: int = 21, n_devices: int = 12):
    """A released + deployed platform world with federated shards."""
    ds = make_gaussian_blobs(1000, 12, 4, seed=seed)
    train, test = ds.split(0.3, seed=seed)
    fleet = Fleet.random(n_devices, seed=seed)
    platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=seed))
    model = make_mlp(12, 4, hidden=(32, 16), seed=0, name="wakeword")
    model.fit(train.x, train.y, epochs=5, lr=0.01, seed=0)
    platform.release(model, test.x, test.y)
    platform.deploy(
        "wakeword",
        reference_x=train.x[:200],
        reference_predictions=model.predict_classes(train.x[:200]),
        num_classes=4,
        prepaid_queries=2000,
    )
    clients = partition_dirichlet(train, 6, alpha=0.7, seed=seed)
    return platform, train, test, clients


def build_pipeline(platform, test, clients, **overrides):
    kwargs = dict(rounds=2, canary_windows=2, seed=21, schedule_every=2)
    kwargs.update(overrides)
    return platform.lifecycle("wakeword", clients, (test.x, test.y), config=LifecycleConfig(**kwargs))


def fleet_fingerprint(platform):
    """Byte-level fingerprint of the production fleet's ledgers + planes."""
    state = platform.fleet.state
    return {
        "level_j": state.level_j.tobytes(),
        "query_count": state.query_count.tobytes(),
        "ledgers": {d: ledger.export() for d, ledger in sorted(platform.ledgers.items())},
        "drift_events": {d: list(m.drift_events) for d, m in sorted(platform.monitors.items())},
    }


@pytest.fixture(scope="module")
def promoted_world():
    """One schedule-triggered cycle that promotes, shared by read-only tests."""
    platform, train, test, clients = build_world()
    pipeline = build_pipeline(platform, test, clients)
    assert pipeline.step() is None  # tick 1: no drift, schedule not due
    decision = pipeline.step()  # tick 2: schedule fires
    return platform, pipeline, decision


class TestTriggers:
    def test_schedule_trigger_fires_on_interval(self, promoted_world):
        _, _, decision = promoted_world
        assert decision is not None
        assert decision.trigger["kind"] == "schedule"

    def test_drift_trigger_preempts_schedule(self):
        platform, train, test, clients = build_world(seed=5)
        pipeline = build_pipeline(platform, test, clients)
        # Serve shifted traffic on the production fleet so monitors record drift.
        shifted = test.x + 6.0
        for device_id in list(platform.monitors)[:4]:
            platform.serve(device_id, "wakeword", shifted[:60])
        decision = pipeline.step()
        assert decision is not None
        assert decision.trigger["kind"] == "drift"
        assert decision.trigger["n_events"] >= 1

    def test_drift_events_consumed_exactly_once(self):
        platform, train, test, clients = build_world(seed=5)
        pipeline = build_pipeline(platform, test, clients, schedule_every=None)
        shifted = test.x + 6.0
        device_id = next(iter(platform.monitors))
        platform.serve(device_id, "wakeword", shifted[:60])
        first = pipeline.consume_drift_events()
        assert first
        # Nothing new happened: the same events must not re-trigger.
        assert pipeline.consume_drift_events() == []
        assert pipeline.poll() is None


class TestPromotion:
    def test_candidate_promoted_and_staged_production(self, promoted_world):
        platform, _, decision = promoted_world
        assert decision.promoted and decision.reasons == []
        production = platform.registry.production("wakeword")
        assert production is not None
        assert production.version_id == decision.candidate_version

    def test_promotion_flips_every_deployment(self, promoted_world):
        platform, _, decision = promoted_world
        for device_id in decision.canary_devices:
            assert platform.registry.deployed_version(device_id, "wakeword") == decision.candidate_version
        hist = platform.registry.deployment_histogram("wakeword")
        assert set(hist) == {decision.candidate_version}

    def test_pipelines_fired_and_staleness_cleared(self, promoted_world):
        platform, _, decision = promoted_world
        assert len(decision.derived_versions) >= 1
        assert decision.stale_variants_after == 0
        assert platform.registry.stale_variants("wakeword") == []

    def test_decision_recorded_in_store_and_tags(self, promoted_world):
        platform, _, decision = promoted_world
        record = platform.registry.store.get_object(decision.record_digest)
        assert record["promoted"] is True
        assert record["candidate_version"] == decision.candidate_version
        version = platform.registry.get(decision.candidate_version)
        assert version.tags["gate_record"] == decision.record_digest
        assert version.parents == (decision.incumbent_version,)

    def test_serving_uses_promoted_weights(self, promoted_world):
        platform, _, decision = promoted_world
        promoted = platform.registry.load_model(decision.candidate_version)
        x = np.random.default_rng(0).normal(size=(8, 12))
        np.testing.assert_allclose(
            platform.deployed_models["wakeword"].forward(x), promoted.forward(x)
        )

    def test_deploy_prefers_production_version(self, promoted_world):
        platform, _, decision = promoted_world
        device_id = decision.canary_devices[0]
        platform.deploy("wakeword", device_ids=[device_id])
        assert platform.registry.deployed_version(device_id, "wakeword") == decision.candidate_version


class TestDeterminism:
    def test_same_seed_same_promoted_version_and_metrics(self, promoted_world):
        _, _, first = promoted_world
        platform, train, test, clients = build_world()
        pipeline = build_pipeline(platform, test, clients)
        assert pipeline.step() is None
        second = pipeline.step()
        assert second.candidate_version == first.candidate_version
        assert second.promoted == first.promoted
        assert second.candidate_metrics == first.candidate_metrics
        assert second.incumbent_metrics == first.incumbent_metrics
        assert second.canary_devices == first.canary_devices

    def test_batched_and_oracle_canary_agree(self):
        reports = []
        for engine in ("batched", "oracle"):
            platform, train, test, clients = build_world(seed=9)
            pipeline = build_pipeline(platform, test, clients, canary_engine=engine)
            decision = pipeline.run_cycle(
                candidate_model=degraded_candidate(platform.deployed_models["wakeword"], seed=1)
            )
            reports.append((decision.candidate_metrics, decision.incumbent_metrics, decision.promoted))
        assert reports[0] == reports[1]


class TestRollback:
    @pytest.mark.parametrize(
        "make_candidate, gate",
        [
            (bad_architecture_candidate, "architecture"),
            (oversized_candidate, "oversized"),
            (degraded_candidate, "accuracy"),
        ],
    )
    def test_bad_candidates_rejected(self, make_candidate, gate):
        platform, train, test, clients = build_world(seed=3)
        incumbent_deployments = {
            d: platform.registry.deployed_version(d, "wakeword") for d in platform.registry.deployments
        }
        incumbent_model = platform.deployed_models["wakeword"]
        pipeline = build_pipeline(platform, test, clients)
        decision = pipeline.run_cycle(candidate_model=make_candidate(incumbent_model, seed=1))
        assert not decision.promoted
        assert any(reason.startswith(f"{gate}:") for reason in decision.reasons)
        # Rollback: the candidate is staged rejected, the incumbent untouched.
        assert platform.registry.get(decision.candidate_version).tags["stage"] == "rejected"
        assert platform.deployed_models["wakeword"] is incumbent_model
        assert platform.registry.production("wakeword") is None
        for device_id, version in incumbent_deployments.items():
            assert platform.registry.deployed_version(device_id, "wakeword") == version

    def test_canary_does_not_perturb_incumbent_fleet(self):
        # World A runs a full canary cycle (injected candidate: no federated
        # training side-effects); world B does nothing.  The production
        # fleet's planes, MAC-chained ledgers and monitors must match
        # byte-for-byte: the canary ran entirely on cloned state.
        platform_a, _, test_a, clients_a = build_world(seed=13)
        platform_b, _, _, _ = build_world(seed=13)
        pipeline = build_pipeline(platform_a, test_a, clients_a)
        pipeline.run_cycle(
            candidate_model=degraded_candidate(platform_a.deployed_models["wakeword"], seed=2)
        )
        assert fleet_fingerprint(platform_a) == fleet_fingerprint(platform_b)

    def test_rejected_candidate_never_becomes_deploy_target(self):
        platform, train, test, clients = build_world(seed=3)
        pipeline = build_pipeline(platform, test, clients)
        decision = pipeline.run_cycle(
            candidate_model=oversized_candidate(platform.deployed_models["wakeword"], seed=1)
        )
        # Latest *base* is now the rejected candidate, but deploy must not pick it:
        assert platform.registry.latest("wakeword", kind="base").version_id == decision.candidate_version
        device_id = sorted(platform.registry.deployments)[0]
        before = platform.registry.deployed_version(device_id, "wakeword")
        platform.deploy("wakeword", device_ids=[device_id])
        after = platform.registry.deployed_version(device_id, "wakeword")
        # No production staged yet -> falls back to latest base (the rejected
        # one was registered, so guard by promoting a good cycle first).
        pipeline2 = build_pipeline(platform, test, clients)
        good = pipeline2.run_cycle(trigger={"kind": "manual"})
        if good.promoted:
            platform.deploy("wakeword", device_ids=[device_id])
            assert (
                platform.registry.deployed_version(device_id, "wakeword") == good.candidate_version
            )
            assert good.candidate_version != decision.candidate_version


class TestGateExtension:
    def test_metric_probe_and_custom_gate(self):
        platform, train, test, clients = build_world(seed=7)

        def served_fraction_probe(sandbox, model, fleet_report):
            return fleet_report.served / max(fleet_report.requested, 1)

        def strict_gate(candidate, incumbent, config):
            if candidate.extras["served_fraction"] < 2.0:  # impossible: force failure
                return "served fraction below impossible threshold"
            return None

        pipeline = platform.lifecycle(
            "wakeword",
            clients,
            (test.x, test.y),
            config=LifecycleConfig(rounds=1, canary_windows=1, seed=7),
            gates=default_gates() + [GateCheck("strict", strict_gate)],
            metric_probes={"served_fraction": served_fraction_probe},
        )
        decision = pipeline.run_cycle(trigger={"kind": "manual"})
        assert not decision.promoted
        assert any(r.startswith("strict:") for r in decision.reasons)
        assert "served_fraction" in decision.candidate_metrics
        assert "served_fraction" in decision.incumbent_metrics

    def test_history_accumulates(self):
        platform, train, test, clients = build_world(seed=7)
        pipeline = build_pipeline(platform, test, clients)
        pipeline.run_cycle(trigger={"kind": "manual"})
        pipeline.run_cycle(
            candidate_model=oversized_candidate(platform.deployed_models["wakeword"], seed=1)
        )
        assert [d.cycle for d in pipeline.history] == [0, 1]
        kinds = [d.promoted for d in pipeline.history]
        assert kinds[1] is False
