"""Tests for quantization, pruning, distillation, low-rank and Pareto search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import get_profile
from repro.nn import make_mlp
from repro.optimize import (
    QuantizationConfig,
    VariantGenerator,
    calibrate_activation_ranges,
    dense_rank_for_compression,
    dequantize_array,
    distill,
    factorize_dense_model,
    fake_quantize,
    global_magnitude_prune,
    iterative_prune_finetune,
    magnitude_prune,
    pareto_front,
    quantization_error,
    quantize_array,
    quantize_model,
    soft_label_dataset,
    sparse_size_bytes,
    sparsity,
    structured_prune_dense,
)


class TestQuantization:
    def test_roundtrip_error_bounded_by_step(self, rng):
        x = rng.normal(size=256)
        q, scale, zero = quantize_array(x, bits=8)
        restored = dequantize_array(q, scale, zero)
        assert np.max(np.abs(restored - x)) <= scale * 0.5 + 1e-12

    def test_lower_bits_more_error(self, rng):
        x = rng.normal(size=512)
        errors = [np.mean((fake_quantize(x, b) - x) ** 2) for b in (8, 4, 2)]
        assert errors[0] < errors[1] < errors[2]

    def test_affine_covers_asymmetric_range(self, rng):
        x = rng.uniform(2.0, 5.0, size=200)
        sym = fake_quantize(x, 4, symmetric=True)
        aff = fake_quantize(x, 4, symmetric=False)
        assert np.mean((aff - x) ** 2) < np.mean((sym - x) ** 2)

    def test_per_channel_at_least_as_good(self, rng):
        w = rng.normal(size=(32, 8)) * np.array([0.01, 1.0, 10.0, 0.1, 5.0, 0.5, 2.0, 0.05])
        per_tensor = np.mean((fake_quantize(w, 4, per_channel=False) - w) ** 2)
        per_channel = np.mean((fake_quantize(w, 4, per_channel=True) - w) ** 2)
        assert per_channel <= per_tensor

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationConfig(bits=3)

    def test_quantize_model_8bit_keeps_accuracy(self, trained_mlp, blobs):
        _, test = blobs
        q = quantize_model(trained_mlp, QuantizationConfig(bits=8))
        base_acc = trained_mlp.evaluate(test.x, test.y)["accuracy"]
        assert q.evaluate(test.x, test.y)["accuracy"] >= base_acc - 0.02

    def test_quantize_model_1bit_degrades(self, trained_mlp, blobs):
        _, test = blobs
        q = quantize_model(trained_mlp, QuantizationConfig(bits=1))
        err = quantization_error(trained_mlp, q)
        assert err["relative_l2"] > 0.1

    def test_quantization_error_keys(self, trained_mlp):
        q = quantize_model(trained_mlp, QuantizationConfig(bits=4))
        err = quantization_error(trained_mlp, q)
        assert set(err) == {"mse", "max_abs", "relative_l2"}

    def test_calibration_ranges(self, trained_mlp, blobs):
        train, _ = blobs
        ranges = calibrate_activation_ranges(trained_mlp, train.x[:64])
        assert len(ranges) == len(trained_mlp.layers)
        for lo, hi in ranges.values():
            assert hi >= lo


class TestPruning:
    def test_magnitude_prune_reaches_target(self, trained_mlp):
        pruned = magnitude_prune(trained_mlp, 0.7)
        assert abs(sparsity(pruned) - 0.7) < 0.05

    def test_global_prune_reaches_target(self, trained_mlp):
        pruned = global_magnitude_prune(trained_mlp, 0.6)
        assert abs(sparsity(pruned) - 0.6) < 0.05

    def test_moderate_pruning_keeps_accuracy(self, trained_mlp, blobs):
        _, test = blobs
        pruned = magnitude_prune(trained_mlp, 0.5)
        assert pruned.evaluate(test.x, test.y)["accuracy"] > 0.8

    def test_sparse_size_smaller_when_sparse(self, trained_mlp):
        dense_size = sparse_size_bytes(trained_mlp)
        pruned_size = sparse_size_bytes(magnitude_prune(trained_mlp, 0.9))
        assert pruned_size < dense_size

    def test_invalid_sparsity(self, trained_mlp):
        with pytest.raises(ValueError):
            magnitude_prune(trained_mlp, 1.0)

    def test_structured_prune_shrinks_architecture(self, trained_mlp, blobs):
        _, test = blobs
        pruned = structured_prune_dense(trained_mlp, 0.5)
        assert pruned.num_params() < trained_mlp.num_params()
        assert pruned.forward(test.x[:4]).shape == (4, 4)

    def test_structured_prune_rejects_cnn(self, trained_cnn):
        with pytest.raises(TypeError):
            structured_prune_dense(trained_cnn, 0.5)

    def test_iterative_prune_finetune_recovers_accuracy(self, blobs):
        train, test = blobs
        model = make_mlp(12, 4, hidden=(32, 16), seed=5)
        model.fit(train.x, train.y, epochs=5, lr=0.01)
        pruned, log = iterative_prune_finetune(model, train.x, train.y, final_sparsity=0.8, steps=2, finetune_epochs=1)
        assert sparsity(pruned) > 0.7
        one_shot = global_magnitude_prune(model, 0.8)
        assert pruned.evaluate(test.x, test.y)["accuracy"] >= one_shot.evaluate(test.x, test.y)["accuracy"] - 0.05
        assert len(log) == 2


class TestDistillationAndLowRank:
    def test_distillation_transfers_behaviour(self, trained_mlp, blobs):
        train, test = blobs
        student = make_mlp(12, 4, hidden=(8,), seed=9)
        history = distill(trained_mlp, student, train.x, train.y, epochs=6, lr=0.01)
        assert history["agreement"][-1] > 0.8
        assert student.num_params() < trained_mlp.num_params()

    def test_soft_labels_shape(self, trained_mlp, blobs):
        train, _ = blobs
        logits = soft_label_dataset(trained_mlp, train.x[:50])
        assert logits.shape == (50, 4)

    def test_rank_for_compression(self):
        rank = dense_rank_for_compression(64, 64, compression=4.0)
        assert 1 <= rank <= 64
        assert rank * (64 + 64) <= 64 * 64 / 4 + (64 + 64)

    def test_lowrank_reduces_params_keeps_accuracy(self, trained_mlp, blobs):
        _, test = blobs
        factored = factorize_dense_model(trained_mlp, rank=8)
        assert factored.num_params() < trained_mlp.num_params()
        assert factored.evaluate(test.x, test.y)["accuracy"] > 0.85

    def test_lowrank_aggressive_compression_trades_accuracy(self, trained_mlp, blobs):
        _, test = blobs
        mild = factorize_dense_model(trained_mlp, rank=8)
        harsh = factorize_dense_model(trained_mlp, compression=4.0)
        assert harsh.num_params() < mild.num_params()
        assert harsh.evaluate(test.x, test.y)["accuracy"] <= mild.evaluate(test.x, test.y)["accuracy"] + 1e-9

    def test_lowrank_requires_exactly_one_arg(self, trained_mlp):
        with pytest.raises(ValueError):
            factorize_dense_model(trained_mlp)
        with pytest.raises(ValueError):
            factorize_dense_model(trained_mlp, rank=2, compression=2.0)


class TestVariantsAndPareto:
    def test_generate_variants_records(self, trained_mlp, blobs):
        _, test = blobs
        profiles = [get_profile("mcu-m4"), get_profile("phone-mid")]
        variants = VariantGenerator().generate(
            trained_mlp, test.x, test.y, profiles, bit_widths=(8, 2), sparsities=(0.5,), lowrank_compressions=(2.0,)
        )
        names = {v.optimization for v in variants}
        assert names == {"none", "quantization", "pruning", "lowrank"}
        for v in variants:
            assert set(v.latency_s) == {"mcu-m4", "phone-mid"}

    def test_pareto_front_is_non_dominated(self, trained_mlp, blobs):
        _, test = blobs
        variants = VariantGenerator().generate(trained_mlp, test.x, test.y, [get_profile("mcu-m4")], bit_widths=(8, 4, 2), sparsities=(0.5, 0.9))
        front = pareto_front(variants)
        assert front
        for f in front:
            for other in variants:
                dominates = other.size_bytes < f.size_bytes and other.accuracy > f.accuracy
                assert not dominates

    def test_pareto_latency_objective(self, trained_mlp, blobs):
        _, test = blobs
        variants = VariantGenerator().generate(trained_mlp, test.x, test.y, [get_profile("mcu-m4")], bit_widths=(8,), sparsities=())
        front = pareto_front(variants, objectives=("latency:mcu-m4", "accuracy"))
        assert front
