"""Unit tests for repro.nn.layers: shapes, forward values and gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    col2im,
    im2col,
)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_input_gradient(layer, x, atol=1e-5):
    """Compare the analytic dL/dx against numerical differentiation (L = sum(out))."""
    out = layer.forward(x, training=True)
    analytic = layer.backward(np.ones_like(out))

    def loss():
        return float(layer.forward(x, training=True).sum())

    numeric = numerical_grad(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


def check_param_gradient(layer, x, key, atol=1e-5):
    """Compare analytic parameter gradients against numerical differentiation."""
    out = layer.forward(x, training=True)
    layer.backward(np.ones_like(out))
    analytic = layer.grads[key].copy()

    def loss():
        return float(layer.forward(x, training=True).sum())

    numeric = numerical_grad(loss, layer.params[key])
    np.testing.assert_allclose(analytic, numeric, atol=atol)


# ---------------------------------------------------------------------------
# Dense
# ---------------------------------------------------------------------------

class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(7)
        layer.build((5,), rng)
        assert layer.output_shape((5,)) == (7,)
        out = layer.forward(rng.normal(size=(3, 5)))
        assert out.shape == (3, 7)

    def test_forward_matches_matmul(self, rng):
        layer = Dense(4, use_bias=True)
        layer.build((6,), rng)
        x = rng.normal(size=(2, 6))
        expected = x @ layer.params["W"] + layer.params["b"]
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_input_gradient(self, rng):
        layer = Dense(5, activation="relu")
        layer.build((4,), rng)
        check_input_gradient(layer, rng.normal(size=(3, 4)))

    def test_weight_gradient(self, rng):
        layer = Dense(5, activation="tanh")
        layer.build((4,), rng)
        check_param_gradient(layer, rng.normal(size=(3, 4)), "W")

    def test_bias_gradient(self, rng):
        layer = Dense(5)
        layer.build((4,), rng)
        check_param_gradient(layer, rng.normal(size=(3, 4)), "b")

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)

    def test_no_bias(self, rng):
        layer = Dense(3, use_bias=False)
        layer.build((4,), rng)
        assert "b" not in layer.params
        assert layer.num_params() == 12


# ---------------------------------------------------------------------------
# Conv2D / DepthwiseConv2D
# ---------------------------------------------------------------------------

class TestConv2D:
    def test_same_padding_shape(self, rng):
        layer = Conv2D(6, kernel_size=3, padding="same")
        layer.build((8, 8, 2), rng)
        assert layer.output_shape((8, 8, 2)) == (8, 8, 6)
        out = layer.forward(rng.normal(size=(2, 8, 8, 2)))
        assert out.shape == (2, 8, 8, 6)

    def test_valid_padding_shape(self, rng):
        layer = Conv2D(4, kernel_size=3, padding="valid")
        layer.build((8, 8, 1), rng)
        assert layer.output_shape((8, 8, 1)) == (6, 6, 4)

    def test_stride(self, rng):
        layer = Conv2D(4, kernel_size=3, stride=2, padding="same")
        layer.build((8, 8, 1), rng)
        assert layer.output_shape((8, 8, 1)) == (4, 4, 4)

    def test_matches_naive_convolution(self, rng):
        layer = Conv2D(2, kernel_size=3, padding="valid", use_bias=False)
        layer.build((5, 5, 1), rng)
        x = rng.normal(size=(1, 5, 5, 1))
        out = layer.forward(x)
        w = layer.params["W"]
        naive = np.zeros((1, 3, 3, 2))
        for i in range(3):
            for j in range(3):
                patch = x[0, i : i + 3, j : j + 3, :]
                for f in range(2):
                    naive[0, i, j, f] = np.sum(patch * w[:, :, :, f])
        np.testing.assert_allclose(out, naive, atol=1e-12)

    def test_input_gradient(self, rng):
        layer = Conv2D(3, kernel_size=3, padding="same")
        layer.build((5, 5, 2), rng)
        check_input_gradient(layer, rng.normal(size=(2, 5, 5, 2)), atol=1e-4)

    def test_weight_gradient(self, rng):
        layer = Conv2D(2, kernel_size=3, padding="valid")
        layer.build((5, 5, 1), rng)
        check_param_gradient(layer, rng.normal(size=(2, 5, 5, 1)), "W", atol=1e-4)

    def test_invalid_padding(self):
        with pytest.raises(ValueError):
            Conv2D(4, padding="full")


class TestDepthwiseConv2D:
    def test_shape_preserves_channels(self, rng):
        layer = DepthwiseConv2D(kernel_size=3, padding="same")
        layer.build((6, 6, 3), rng)
        assert layer.output_shape((6, 6, 3)) == (6, 6, 3)
        out = layer.forward(rng.normal(size=(2, 6, 6, 3)))
        assert out.shape == (2, 6, 6, 3)

    def test_channels_independent(self, rng):
        layer = DepthwiseConv2D(kernel_size=3, padding="same", use_bias=False)
        layer.build((6, 6, 2), rng)
        x = rng.normal(size=(1, 6, 6, 2))
        out = layer.forward(x)
        # Zeroing channel 1 of the input must not change channel 0 of the output.
        x2 = x.copy()
        x2[..., 1] = 0.0
        out2 = layer.forward(x2)
        np.testing.assert_allclose(out[..., 0], out2[..., 0])

    def test_input_gradient(self, rng):
        layer = DepthwiseConv2D(kernel_size=3, padding="same")
        layer.build((5, 5, 2), rng)
        check_input_gradient(layer, rng.normal(size=(2, 5, 5, 2)), atol=1e-4)

    def test_weight_gradient(self, rng):
        layer = DepthwiseConv2D(kernel_size=3, padding="valid")
        layer.build((5, 5, 2), rng)
        check_param_gradient(layer, rng.normal(size=(2, 5, 5, 2)), "W", atol=1e-4)


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------

class TestIm2Col:
    def test_roundtrip_is_adjoint(self, rng):
        """<im2col(x), y> must equal <x, col2im(y)> (adjoint property)."""
        x = rng.normal(size=(2, 6, 6, 3))
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, 3, 3, 1, 1)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_output_dims(self, rng):
        x = rng.normal(size=(1, 8, 8, 2))
        cols, oh, ow = im2col(x, 3, 3, 2, 0)
        assert (oh, ow) == (3, 3)
        assert cols.shape == (9, 18)


# ---------------------------------------------------------------------------
# Pooling / BatchNorm / Dropout / Flatten
# ---------------------------------------------------------------------------

class TestPooling:
    def test_maxpool_values(self, rng):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        np.testing.assert_allclose(out.ravel(), [5, 7, 13, 15])

    def test_maxpool_gradient(self, rng):
        layer = MaxPool2D(2)
        check_input_gradient(layer, rng.normal(size=(2, 4, 4, 3)), atol=1e-5)

    def test_avgpool_values(self):
        layer = AvgPool2D(2)
        x = np.ones((1, 4, 4, 2))
        np.testing.assert_allclose(layer.forward(x), np.ones((1, 2, 2, 2)))

    def test_avgpool_gradient(self, rng):
        layer = AvgPool2D(2)
        check_input_gradient(layer, rng.normal(size=(2, 4, 4, 2)))

    def test_global_avgpool(self, rng):
        layer = GlobalAvgPool2D()
        x = rng.normal(size=(3, 5, 5, 4))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(1, 2)))
        check_input_gradient(layer, rng.normal(size=(2, 3, 3, 2)))


class TestBatchNorm:
    def test_training_normalizes(self, rng):
        layer = BatchNorm()
        layer.build((6,), rng)
        x = rng.normal(loc=3.0, scale=2.0, size=(200, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm(momentum=0.0)
        layer.build((4,), rng)
        x = rng.normal(loc=1.0, size=(100, 4))
        layer.forward(x, training=True)  # populates running stats fully (momentum 0)
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)

    def test_gradient(self, rng):
        layer = BatchNorm()
        layer.build((3,), rng)
        check_input_gradient(layer, rng.normal(size=(6, 3)), atol=1e-4)

    def test_nhwc_input(self, rng):
        layer = BatchNorm()
        layer.build((4, 4, 3), rng)
        out = layer.forward(rng.normal(size=(2, 4, 4, 3)), training=True)
        assert out.shape == (2, 4, 4, 3)


class TestDropoutFlattenActivation:
    def test_dropout_inference_identity(self, rng):
        layer = Dropout(0.5, seed=0)
        x = rng.normal(size=(4, 10))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_dropout_training_masks(self, rng):
        layer = Dropout(0.5, seed=0)
        x = np.ones((10, 100))
        out = layer.forward(x, training=True)
        zero_fraction = np.mean(out == 0.0)
        assert 0.3 < zero_fraction < 0.7
        # Inverted dropout keeps the expectation roughly constant.
        assert abs(out.mean() - 1.0) < 0.15

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 4, 5, 2))
        out = layer.forward(x)
        assert out.shape == (3, 40)
        grad = layer.backward(out)
        assert grad.shape == x.shape

    def test_activation_layer(self, rng):
        layer = Activation("relu")
        x = rng.normal(size=(5, 7))
        np.testing.assert_allclose(layer.forward(x), np.maximum(x, 0))
        check_input_gradient(layer, rng.normal(size=(5, 7)))
