"""Tests for the Sequential model, losses, optimizers, metrics and the zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Momentum,
    SGD,
    Sequential,
    accuracy,
    agreement,
    binary_cross_entropy,
    confusion_matrix,
    distillation_loss,
    get_activation,
    get_loss,
    get_optimizer,
    make_autoencoder,
    make_depthwise_cnn,
    make_mlp,
    make_multi_fidelity_family,
    make_tiny_cnn,
    mse,
    precision_recall_f1,
    r2_score,
    softmax,
    softmax_cross_entropy,
    top_k_accuracy,
)
from repro.nn.layers import Dense


# ---------------------------------------------------------------------------
# losses
# ---------------------------------------------------------------------------

class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss < 1e-4
        assert grad.shape == logits.shape

    def test_cross_entropy_gradient_numeric(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(4):
            for j in range(3):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric[i, j] = (softmax_cross_entropy(plus, labels)[0] - softmax_cross_entropy(minus, labels)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_cross_entropy_accepts_soft_targets(self, rng):
        logits = rng.normal(size=(5, 4))
        soft = softmax(rng.normal(size=(5, 4)), axis=-1)
        loss, grad = softmax_cross_entropy(logits, soft)
        assert np.isfinite(loss) and grad.shape == logits.shape

    def test_mse_zero_at_target(self, rng):
        y = rng.normal(size=(6, 2))
        loss, grad = mse(y, y)
        assert loss == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_binary_cross_entropy_bounds(self):
        pred = np.array([[0.9], [0.1]])
        target = np.array([[1.0], [0.0]])
        loss, _ = binary_cross_entropy(pred, target)
        assert 0.0 < loss < 0.2

    def test_distillation_loss_mixes_terms(self, rng):
        student = rng.normal(size=(8, 3))
        teacher = rng.normal(size=(8, 3))
        labels = rng.integers(0, 3, size=8)
        loss_soft, _ = distillation_loss(student, teacher, labels, alpha=1.0)
        loss_hard, _ = distillation_loss(student, teacher, labels, alpha=0.0)
        loss_mix, _ = distillation_loss(student, teacher, labels, alpha=0.5)
        assert min(loss_soft, loss_hard) <= loss_mix <= max(loss_soft, loss_hard) + 1e-9

    def test_get_loss_unknown(self):
        with pytest.raises(KeyError):
            get_loss("nope")


# ---------------------------------------------------------------------------
# optimizers
# ---------------------------------------------------------------------------

def _quadratic_param():
    params = {"w": np.array([5.0, -3.0])}
    grads = {}
    return params, grads


@pytest.mark.parametrize("opt_name", ["sgd", "momentum", "adam"])
def test_optimizers_minimize_quadratic(opt_name):
    params, grads = _quadratic_param()
    opt = get_optimizer(opt_name, lr=0.1)
    for _ in range(300):
        grads["w"] = 2.0 * params["w"]
        opt.step([(params, grads, ())])
    assert np.abs(params["w"]).max() < 1e-2


def test_optimizer_skips_non_trainable():
    params = {"w": np.array([1.0]), "running_mean": np.array([5.0])}
    grads = {"w": np.array([1.0]), "running_mean": np.array([1.0])}
    SGD(lr=0.5).step([(params, grads, ("running_mean",))])
    assert params["running_mean"][0] == 5.0
    assert params["w"][0] == 0.5


def test_weight_decay_shrinks_weights():
    params = {"w": np.array([1.0])}
    grads = {"w": np.array([0.0])}
    SGD(lr=0.1, weight_decay=0.1).step([(params, grads, ())])
    assert params["w"][0] < 1.0


def test_invalid_lr():
    with pytest.raises(ValueError):
        SGD(lr=0.0)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_accuracy_from_logits_and_classes(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        labels = np.array([0, 1])
        assert accuracy(logits, labels) == 1.0
        assert accuracy(np.array([0, 0]), labels) == 0.5

    def test_top_k(self):
        logits = np.array([[5.0, 4.0, 1.0], [1.0, 2.0, 3.0]])
        labels = np.array([1, 0])
        assert top_k_accuracy(logits, labels, k=1) == 0.0
        assert top_k_accuracy(logits, labels, k=2) == 0.5
        assert top_k_accuracy(logits, labels, k=3) == 1.0

    def test_confusion_matrix(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        cm = confusion_matrix(preds, labels, num_classes=3)
        assert cm[0, 0] == 1 and cm[2, 1] == 1 and cm[2, 2] == 1
        assert cm.sum() == 4

    def test_precision_recall_f1_perfect(self):
        preds = np.array([0, 1, 2, 0])
        out = precision_recall_f1(preds, preds, num_classes=3)
        assert out["precision"] == 1.0 and out["recall"] == 1.0 and out["f1"] == 1.0

    def test_r2(self, rng):
        y = rng.normal(size=100)
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(np.full_like(y, y.mean()), y) == pytest.approx(0.0, abs=1e-9)

    def test_agreement(self, rng):
        a = rng.normal(size=(10, 3))
        assert agreement(a, a) == 1.0


# ---------------------------------------------------------------------------
# Sequential model behaviour
# ---------------------------------------------------------------------------

class TestSequential:
    def test_training_reduces_loss_and_reaches_high_accuracy(self, blobs):
        train, test = blobs
        model = make_mlp(12, 4, hidden=(32, 16), seed=1)
        history = model.fit(train.x, train.y, epochs=8, lr=0.01, seed=1)
        assert history["loss"][-1] < history["loss"][0]
        assert model.evaluate(test.x, test.y)["accuracy"] > 0.9

    def test_flat_weights_roundtrip(self, trained_mlp):
        flat = trained_mlp.get_flat_weights()
        clone = trained_mlp.clone(copy_weights=False)
        clone.set_flat_weights(flat)
        np.testing.assert_allclose(clone.get_flat_weights(), flat)

    def test_flat_weights_wrong_size(self, trained_mlp):
        with pytest.raises(ValueError):
            trained_mlp.set_flat_weights(np.zeros(3))

    def test_get_set_weights_shape_check(self, trained_mlp):
        weights = trained_mlp.get_weights()
        weights[0]["W"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            trained_mlp.clone().set_weights(weights)

    def test_serialization_roundtrip(self, trained_mlp, blobs):
        _, test = blobs
        blob = trained_mlp.to_bytes()
        restored = Sequential.from_bytes(blob)
        np.testing.assert_allclose(restored.forward(test.x[:16]), trained_mlp.forward(test.x[:16]))

    def test_clone_without_weights_differs(self, trained_mlp):
        fresh = trained_mlp.clone(copy_weights=False)
        assert not np.allclose(fresh.get_flat_weights(), trained_mlp.get_flat_weights())
        assert fresh.num_params() == trained_mlp.num_params()

    def test_clone_is_independent(self, trained_mlp):
        clone = trained_mlp.clone(copy_weights=True)
        clone.layers[0].params["W"] += 1.0
        assert not np.allclose(clone.get_flat_weights(), trained_mlp.get_flat_weights())

    def test_predict_classes_and_proba(self, trained_mlp, blobs):
        _, test = blobs
        proba = trained_mlp.predict_proba(test.x[:10])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        classes = trained_mlp.predict_classes(test.x[:10])
        np.testing.assert_array_equal(classes, proba.argmax(axis=1))

    def test_validation_history(self, blobs):
        train, test = blobs
        model = make_mlp(12, 4, hidden=(16,), seed=2)
        history = model.fit(train.x, train.y, epochs=2, validation_data=(test.x, test.y))
        assert len(history["val_accuracy"]) == 2

    def test_summary_mentions_all_layers(self, trained_mlp):
        text = trained_mlp.summary()
        assert "total params" in text
        assert str(trained_mlp.num_params()) in text

    def test_callbacks_invoked(self, blobs):
        train, _ = blobs
        model = make_mlp(12, 4, hidden=(8,), seed=3)
        seen = []
        model.fit(train.x[:64], train.y[:64], epochs=3, callbacks=[lambda e, m: seen.append(e)])
        assert seen == [0, 1, 2]


# ---------------------------------------------------------------------------
# model zoo
# ---------------------------------------------------------------------------

class TestZoo:
    def test_cnn_shapes(self, digits):
        train, _ = digits
        model = make_tiny_cnn((12, 12, 1), 10, filters=(4, 8), seed=0)
        out = model.forward(train.x[:4])
        assert out.shape == (4, 10)

    def test_depthwise_cnn_width_multiplier(self):
        small = make_depthwise_cnn((16, 16, 1), 4, width_multiplier=0.5, seed=0)
        large = make_depthwise_cnn((16, 16, 1), 4, width_multiplier=2.0, seed=0)
        assert large.num_params() > small.num_params()

    def test_autoencoder_reconstruction_shape(self, rng):
        ae = make_autoencoder(24, bottleneck=4, seed=0)
        x = rng.normal(size=(5, 24))
        assert ae.forward(x).shape == (5, 24)

    def test_multi_fidelity_family_ordering(self):
        family = make_multi_fidelity_family(16, 4, seed=0)
        sizes = [m.num_params() for m in family.values()]
        assert sizes == sorted(sizes)
        assert len(family) == 4

    def test_activation_registry_unknown(self):
        with pytest.raises(KeyError):
            get_activation("swishish")
