"""Tests for Freivalds checks, Merkle commitments, transcripts and the simulated TEE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import make_tiny_cnn
from repro.verification import (
    FreivaldsVerifier,
    MerkleTree,
    SimulatedEnclave,
    TranscriptVerifier,
    VerifiableExecutor,
    commit_model_weights,
    freivalds_check,
    slalom_partition,
    verify_weight_chunk,
)


class TestFreivalds:
    def test_accepts_correct_product(self, rng):
        a = rng.normal(size=(40, 30))
        b = rng.normal(size=(30, 20))
        assert freivalds_check(a, b, a @ b, rng=rng)

    def test_rejects_tampered_product(self, rng):
        a = rng.normal(size=(40, 30))
        b = rng.normal(size=(30, 20))
        c = a @ b
        c[5, 7] += 1e-2
        verifier = FreivaldsVerifier(n_trials=12, seed=0)
        assert not verifier.verify(a, b, c)
        assert verifier.failures == 1

    def test_soundness_error_decreases_with_trials(self):
        assert FreivaldsVerifier(n_trials=16).soundness_error < FreivaldsVerifier(n_trials=4).soundness_error

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            freivalds_check(rng.normal(size=(3, 3)), rng.normal(size=(4, 4)), rng.normal(size=(3, 4)))

    def test_tolerates_floating_point_noise(self, rng):
        a = rng.normal(size=(64, 64)) * 1e3
        b = rng.normal(size=(64, 64)) * 1e3
        c = (a @ b).astype(np.float32).astype(np.float64)  # rounding noise
        assert freivalds_check(a, b, c, tolerance=1e-5, rng=rng)


class TestMerkle:
    def test_root_changes_with_content(self):
        t1 = MerkleTree([b"a", b"b", b"c"])
        t2 = MerkleTree([b"a", b"b", b"d"])
        assert t1.root != t2.root

    def test_inclusion_proofs_verify(self):
        leaves = [f"chunk-{i}".encode() for i in range(7)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert MerkleTree.verify_proof(leaf, i, tree.proof(i), tree.root)

    def test_wrong_leaf_fails(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        assert not MerkleTree.verify_proof(b"x", 1, tree.proof(1), tree.root)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_model_commitment_and_chunk_audit(self, trained_mlp):
        root, tree, chunks = commit_model_weights(trained_mlp, chunk_size=1024)
        assert verify_weight_chunk(chunks[0], 0, tree.proof(0), root)
        # A model with different weights commits to a different root.
        other = trained_mlp.clone(copy_weights=True)
        other.layers[0].params["W"] += 1e-3
        other_root, _, _ = commit_model_weights(other, chunk_size=1024)
        assert other_root != root


class TestTranscriptProtocol:
    def test_honest_transcript_verifies(self, trained_mlp, blobs):
        _, test = blobs
        executor = VerifiableExecutor(trained_mlp, seed=0)
        transcript = executor.execute(test.x[:64])
        report = TranscriptVerifier(trained_mlp, expected_root=executor.weight_root, seed=0).verify(transcript)
        assert report["valid"]
        assert report["transcript_bytes"] > 0
        assert report["soundness_error"] < 0.01

    def test_tampered_prediction_detected(self, trained_mlp, blobs):
        _, test = blobs
        executor = VerifiableExecutor(trained_mlp, seed=0)
        transcript = executor.execute(test.x[:32])
        transcript.layer_outputs[-1][0, 0] += 5.0
        report = TranscriptVerifier(trained_mlp, expected_root=executor.weight_root, seed=0).verify(transcript)
        assert not report["valid"]

    def test_swapped_model_detected_via_commitment(self, trained_mlp, blobs):
        _, test = blobs
        imposter = trained_mlp.clone(copy_weights=True)
        imposter.layers[0].params["W"] *= 1.5
        executor = VerifiableExecutor(imposter, seed=0)
        transcript = executor.execute(test.x[:16])
        registered_root, _, _ = commit_model_weights(trained_mlp)
        report = TranscriptVerifier(imposter, expected_root=registered_root, seed=0).verify(transcript)
        assert not report["valid"]
        assert any("commitment" in issue for issue in report["issues"])

    def test_wrong_architecture_detected(self, trained_mlp, trained_cnn, digits):
        _, test = digits
        executor = VerifiableExecutor(trained_cnn, seed=0)
        transcript = executor.execute(test.x[:8])
        report = TranscriptVerifier(trained_mlp, seed=0).verify(transcript)
        assert not report["valid"]

    def test_honest_cnn_transcript_verifies_via_conv_gemms(self, trained_cnn, digits):
        """Conv layers are Freivalds-checked from their im2col GEMM triples
        (the same records verify_compiled_run checks) — the verifier no
        longer re-executes standard convolutions."""
        _, test = digits
        executor = VerifiableExecutor(trained_cnn, seed=0)
        transcript = executor.execute(test.x[:8])
        report = TranscriptVerifier(trained_cnn, expected_root=executor.weight_root, seed=0).verify(transcript)
        assert report["valid"], report["issues"]
        # dense layers + activation-free conv layers all go through Freivalds
        n_conv = sum(1 for l in trained_cnn.layers if type(l).__name__ == "Conv2D" and not l.activation_name)
        n_dense = sum(
            1 for l in trained_cnn.layers if type(l).__name__ == "Dense" and not l.activation_name
        )
        assert report["freivalds_checked_gemms"] == n_conv + n_dense > 0

    def test_tampered_conv_output_rejected_by_freivalds(self, trained_cnn, digits):
        """An adversarial single-entry edit of a conv layer's output must be
        caught by the randomized GEMM check, not just downstream layers."""
        _, test = digits
        executor = VerifiableExecutor(trained_cnn, seed=0)
        transcript = executor.execute(test.x[:8])
        conv_idx = next(
            i for i, l in enumerate(trained_cnn.layers) if type(l).__name__ == "Conv2D" and not l.activation_name
        )
        transcript.layer_outputs[conv_idx][0, 0, 0, 0] += 1e-2
        report = TranscriptVerifier(trained_cnn, expected_root=executor.weight_root, seed=0).verify(transcript)
        assert not report["valid"]
        assert any("Freivalds" in issue and f"layer {conv_idx}" in issue for issue in report["issues"])

    def test_conv_shape_mismatch_flagged(self, trained_cnn, digits):
        _, test = digits
        executor = VerifiableExecutor(trained_cnn, seed=0)
        transcript = executor.execute(test.x[:4])
        conv_idx = next(i for i, l in enumerate(trained_cnn.layers) if type(l).__name__ == "Conv2D")
        transcript.layer_outputs[conv_idx] = transcript.layer_outputs[conv_idx][:, :-1]
        report = TranscriptVerifier(trained_cnn, expected_root=executor.weight_root, seed=0).verify(transcript)
        assert not report["valid"]
        assert any("shape" in issue for issue in report["issues"])


class TestSimulatedEnclave:
    def test_all_inside_overhead_matches_slowdown(self, trained_mlp, blobs):
        _, test = blobs
        enclave = SimulatedEnclave(slowdown=2.0)
        out, report = enclave.run_all_inside(trained_mlp, test.x[:64])
        np.testing.assert_allclose(out, trained_mlp.forward(test.x[:64]))
        assert report.overhead_factor == pytest.approx(2.0)

    def test_slalom_cheaper_than_all_inside_for_cnn(self, trained_cnn, digits):
        _, test = digits
        enclave = SimulatedEnclave(slowdown=3.0, masking_overhead_per_byte=1e-10)
        _, all_inside = enclave.run_all_inside(trained_cnn, test.x[:16])
        out, slalom = enclave.run_slalom(trained_cnn, test.x[:16])
        np.testing.assert_allclose(out, trained_cnn.forward(test.x[:16]), atol=1e-8)
        assert slalom.overhead_factor < all_inside.overhead_factor

    def test_partial_enclave_scales_with_protected_fraction(self, trained_mlp, blobs):
        _, test = blobs
        enclave = SimulatedEnclave(slowdown=4.0)
        _, none_prot = enclave.run_partial(trained_mlp, test.x[:32], protected_layers=[])
        _, all_prot = enclave.run_partial(trained_mlp, test.x[:32], protected_layers=list(range(len(trained_mlp.layers))))
        assert none_prot.overhead_factor == pytest.approx(1.0)
        assert all_prot.overhead_factor == pytest.approx(4.0, rel=0.01)

    def test_slalom_partition_splits_linear_ops(self, trained_cnn):
        outside, inside = slalom_partition(trained_cnn)
        assert set(outside).isdisjoint(inside)
        assert len(outside) + len(inside) == len(trained_cnn.layers)
        assert outside  # the CNN has standalone conv layers

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError):
            SimulatedEnclave(slowdown=0.5)


class TestVerifyCompiledRun:
    def _plan(self):
        from repro.exchange import CompiledExecutor, PassPipeline, from_sequential
        from repro.nn import make_tiny_cnn

        model = make_tiny_cnn((10, 10, 1), 4, filters=(4,), dense_width=8, seed=3)
        graph = PassPipeline.standard_inference().run(from_sequential(model))
        return CompiledExecutor(graph), model

    def test_honest_run_verifies_all_gemms(self, rng):
        from repro.verification import verify_compiled_run

        plan, model = self._plan()
        x = rng.normal(size=(6, 10, 10, 1))
        report = verify_compiled_run(plan, x, n_trials=10, seed=0)
        assert report["valid"]
        assert report["checked_gemms"] == plan.n_gemm_steps == 3  # conv-as-im2col + 2 dense
        assert report["failed_gemms"] == []
        assert 0 < report["soundness_error"] <= 3 * 0.5**10
        np.testing.assert_allclose(report["output"], model.forward(x), atol=1e-9, rtol=1e-9)

    def test_tampered_gemm_is_rejected(self, rng):
        from repro.verification import FreivaldsVerifier

        plan, _ = self._plan()
        _, gemms = plan.run(rng.normal(size=(4, 10, 10, 1)), record_gemms=True)
        verifier = FreivaldsVerifier(n_trials=10, seed=1)
        a, b, c = gemms[0]
        forged = c.copy()
        forged[0, 0] += 1.0  # adversarial single-entry modification
        assert verifier.verify(a, b, c)
        assert not verifier.verify(a, b, forged)
        assert verifier.failures == 1
