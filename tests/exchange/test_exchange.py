"""Tests for the graph IR, executor, passes, compatibility checking and compiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import get_profile
from repro.exchange import (
    CompatibilityChecker,
    CompilationError,
    Compiler,
    GraphExecutor,
    GraphIR,
    GraphNode,
    PassPipeline,
    annotate_quantization,
    eliminate_dropout,
    execute_graph,
    expand_fused_activations,
    fold_batchnorm,
    from_sequential,
    fuse_activations,
    graph_cost,
    infer_shape,
    insert_postprocessing,
    insert_preprocessing,
    memory_plan,
    op_flops,
    per_node_cost,
    split_point_costs,
)


class TestGraphIR:
    def test_export_preserves_semantics(self, trained_mlp, blobs):
        _, test = blobs
        graph = from_sequential(trained_mlp)
        out = execute_graph(graph, test.x[:32])
        np.testing.assert_allclose(out, trained_mlp.forward(test.x[:32]), atol=1e-10)

    def test_export_cnn_preserves_semantics(self, trained_cnn, digits):
        _, test = digits
        graph = from_sequential(trained_cnn)
        out = execute_graph(graph, test.x[:8])
        np.testing.assert_allclose(out, trained_cnn.forward(test.x[:8]), atol=1e-8)

    def test_shapes_and_param_count(self, trained_mlp):
        graph = from_sequential(trained_mlp)
        assert graph.output_shape() == (4,)
        assert graph.param_count() == trained_mlp.num_params()

    def test_duplicate_node_names_rejected(self):
        nodes = [GraphNode("a", "relu"), GraphNode("a", "relu")]
        with pytest.raises(ValueError):
            GraphIR(nodes, (4,))

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            GraphIR([GraphNode("a", "teleport")], (4,))

    def test_serialization_roundtrip(self, trained_mlp, blobs):
        _, test = blobs
        graph = from_sequential(trained_mlp)
        restored = GraphIR.from_bytes(graph.to_bytes())
        np.testing.assert_allclose(execute_graph(restored, test.x[:8]), execute_graph(graph, test.x[:8]))

    def test_fingerprint_changes_with_weights(self, trained_mlp):
        g1 = from_sequential(trained_mlp)
        g2 = g1.clone()
        g2.nodes[0].params["W"] = g2.nodes[0].params["W"] + 1.0
        assert g1.fingerprint() != g2.fingerprint()

    def test_fingerprint_deterministic(self, trained_mlp):
        assert from_sequential(trained_mlp).fingerprint() == from_sequential(trained_mlp).fingerprint()

    def test_size_bytes_respects_bits(self, trained_mlp):
        graph = from_sequential(trained_mlp)
        q = annotate_quantization(graph, bits=8)
        assert q.size_bytes() < graph.size_bytes()

    def test_summary_contains_ops(self, trained_mlp):
        text = from_sequential(trained_mlp).summary()
        assert "dense" in text


class TestOps:
    def test_infer_shapes(self):
        assert infer_shape("dense", (16,), {"units": 8}) == (8,)
        assert infer_shape("conv2d", (8, 8, 3), {"filters": 4, "kernel_size": 3, "padding": "same"}) == (8, 8, 4)
        assert infer_shape("maxpool2d", (8, 8, 4), {"pool_size": 2}) == (4, 4, 4)
        assert infer_shape("flatten", (4, 4, 2), {}) == (32,)
        assert infer_shape("global_avgpool2d", (4, 4, 2), {}) == (2,)

    def test_op_flops_dense(self):
        assert op_flops("dense", (16,), (8,), {"units": 8}) == 2 * 16 * 8

    def test_unknown_op(self):
        with pytest.raises(KeyError):
            infer_shape("warp", (4,))


class TestPasses:
    def test_fold_batchnorm_preserves_output(self, trained_cnn, digits):
        _, test = digits
        graph = from_sequential(trained_cnn)
        folded = fold_batchnorm(graph)
        assert "batchnorm" not in folded.op_types()
        np.testing.assert_allclose(
            execute_graph(folded, test.x[:8]), execute_graph(graph, test.x[:8]), atol=1e-8
        )

    def test_fuse_and_expand_roundtrip(self, trained_mlp, blobs):
        _, test = blobs
        graph = from_sequential(trained_mlp)
        fused = fuse_activations(graph)
        assert len(fused) < len(graph)
        expanded = expand_fused_activations(fused)
        np.testing.assert_allclose(
            execute_graph(expanded, test.x[:8]), execute_graph(graph, test.x[:8]), atol=1e-10
        )

    def test_eliminate_dropout(self):
        nodes = [GraphNode("d", "dense", {"units": 4}, {"W": np.zeros((4, 4))}), GraphNode("drop", "dropout")]
        graph = GraphIR(nodes, (4,))
        assert "dropout" not in eliminate_dropout(graph).op_types()

    def test_quantization_annotation(self, trained_mlp):
        graph = from_sequential(trained_mlp)
        q = annotate_quantization(graph, bits=4, per_channel=True)
        bits = {n.attrs.get("bits") for n in q.nodes if n.params}
        assert bits == {4}
        with pytest.raises(ValueError):
            annotate_quantization(graph, bits=3)

    def test_quantized_graph_accuracy_at_8bit(self, trained_mlp, blobs):
        _, test = blobs
        graph = PassPipeline.standard_inference().run(from_sequential(trained_mlp))
        q = annotate_quantization(graph, bits=8)
        ref = trained_mlp.forward(test.x).argmax(axis=1)
        out = execute_graph(expand_fused_activations(q), test.x).argmax(axis=1)
        assert np.mean(ref == out) > 0.98

    def test_pre_and_post_processing(self, trained_mlp, blobs):
        _, test = blobs
        graph = from_sequential(trained_mlp)
        wrapped = insert_postprocessing(insert_preprocessing(graph, mean=0.0, std=1.0), kind="softmax")
        out = execute_graph(wrapped, test.x[:4])
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)

    def test_standard_pipeline_records_passes(self, trained_cnn):
        graph = PassPipeline.standard_inference().run(from_sequential(trained_cnn))
        assert "fold_batchnorm" in graph.metadata["passes"]


class TestAnalysis:
    def test_graph_cost_keys_and_positivity(self, trained_cnn):
        cost = graph_cost(from_sequential(trained_cnn))
        assert cost["flops"] > 0 and cost["size_bytes"] > 0 and cost["peak_activation_bytes"] > 0

    def test_quantization_reduces_size(self, trained_mlp):
        graph = from_sequential(trained_mlp)
        assert graph_cost(annotate_quantization(graph, 8))["size_bytes"] < graph_cost(graph)["size_bytes"]

    def test_memory_plan_arena_at_least_largest_node(self, trained_cnn):
        graph = from_sequential(trained_cnn)
        plan = memory_plan(graph)
        per_node = per_node_cost(graph)
        assert plan["arena_bytes"] >= max(r["output_bytes"] for r in per_node)

    def test_split_point_costs_monotone_edge_flops(self, trained_cnn):
        rows = split_point_costs(from_sequential(trained_cnn))
        edge = [r["edge_flops"] for r in rows]
        assert edge == sorted(edge)
        assert rows[0]["split_after"] == -1


class TestCompatibilityAndCompiler:
    def test_mcu_m0_rejects_conv(self, trained_cnn):
        checker = CompatibilityChecker()
        report = checker.check(from_sequential(trained_cnn), get_profile("mcu-m0"))
        assert not report.compatible
        assert "unsupported_op" in report.issue_kinds()

    def test_server_accepts_everything(self, trained_cnn):
        checker = CompatibilityChecker()
        report = checker.check(from_sequential(trained_cnn), get_profile("edge-server"))
        assert report.compatible

    def test_flash_limit_detected(self, blobs):
        from repro.nn import make_mlp

        big = make_mlp(12, 4, hidden=(512, 512, 256), seed=0)
        tiny_profile = get_profile("mcu-m0").with_overrides(flash_bytes=1024, supported_ops=frozenset({"dense", "relu"}))
        report = CompatibilityChecker().check(from_sequential(big), tiny_profile)
        assert "flash" in report.issue_kinds()

    def test_coverage_fraction(self, trained_mlp):
        checker = CompatibilityChecker()
        profiles = [get_profile(n) for n in ("mcu-m0", "mcu-m4", "phone-mid", "edge-server")]
        frac = checker.fleet_coverage_fraction(from_sequential(trained_mlp), profiles)
        assert 0.0 < frac <= 1.0

    def test_compiler_selects_supported_bits(self, trained_mlp):
        artifact = Compiler().compile(from_sequential(trained_mlp), get_profile("mcu-m0"), bits=4)
        assert artifact.bits == 8  # mcu-m0 only has 8-bit kernels

    def test_compiler_raises_on_unsupported(self, trained_cnn):
        with pytest.raises(CompilationError):
            Compiler().compile(from_sequential(trained_cnn), get_profile("mcu-m0"))

    def test_compiler_non_strict_returns_artifact(self, trained_cnn):
        artifact = Compiler().compile(from_sequential(trained_cnn), get_profile("mcu-m0"), strict=False)
        assert not artifact.report.compatible

    def test_compile_for_fleet(self, trained_mlp):
        profiles = [get_profile(n) for n in ("mcu-m4", "phone-mid", "edge-server")]
        artifacts, failures = Compiler().compile_for_fleet(from_sequential(trained_mlp), profiles)
        assert len(artifacts) == 3 and not failures

    def test_compiled_artifact_semantics_preserved(self, trained_mlp, blobs):
        _, test = blobs
        artifact = Compiler().compile(from_sequential(trained_mlp), get_profile("phone-mid"), bits=8)
        out = execute_graph(expand_fused_activations(artifact.graph), test.x)
        ref = trained_mlp.forward(test.x)
        assert np.mean(out.argmax(1) == ref.argmax(1)) > 0.98

    def test_artifact_describe(self, trained_mlp):
        artifact = Compiler().compile(from_sequential(trained_mlp), get_profile("phone-mid"))
        desc = artifact.describe()
        assert desc["target"] == "phone-mid" and desc["size_kb"] > 0
