"""Differential tests: CompiledExecutor vs reference GraphExecutor vs nn forward.

The compiled engine must be a drop-in replacement for the reference
interpreter on every architecture the zoo can produce, with and without
quantization annotations.  The reference executor (over re-expanded fused
activations) is the semantic oracle throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exchange import (
    CompiledExecutor,
    FleetExecutor,
    GraphExecutor,
    GraphIR,
    GraphNode,
    PassPipeline,
    annotate_quantization,
    expand_fused_activations,
    from_sequential,
    insert_postprocessing,
    insert_preprocessing,
)
from repro.exchange.executor import _fake_quantize
from repro.nn import (
    make_autoencoder,
    make_depthwise_cnn,
    make_mlp,
    make_multi_fidelity_family,
    make_tiny_cnn,
)

RNG = np.random.default_rng(42)


def _zoo():
    """Every zoo architecture with a matching input batch."""
    cases = [
        (make_mlp(12, 4, hidden=(16, 8), seed=0), RNG.normal(size=(17, 12))),
        (make_mlp(10, 3, hidden=(8,), dropout=0.3, seed=1), RNG.normal(size=(9, 10))),
        (make_tiny_cnn((12, 12, 1), 10, filters=(4, 8), dense_width=16, seed=2), RNG.normal(size=(6, 12, 12, 1))),
        (make_tiny_cnn((8, 8, 2), 3, filters=(4,), use_batchnorm=False, seed=3), RNG.normal(size=(5, 8, 8, 2))),
        (make_depthwise_cnn((16, 16, 1), 4, blocks=2, seed=4), RNG.normal(size=(4, 16, 16, 1))),
        (make_autoencoder(10, bottleneck=3, hidden=12, seed=5), RNG.normal(size=(11, 10))),
    ]
    for model in make_multi_fidelity_family(6, 3, seed=6).values():
        cases.append((model, RNG.normal(size=(7, 6))))
    return cases


ZOO = _zoo()
ZOO_IDS = [m.name for m, _ in ZOO]


class TestDifferentialGolden:
    @pytest.mark.parametrize("model,x", ZOO, ids=ZOO_IDS)
    def test_matches_model_forward_fp32(self, model, x):
        """Exported graph, compiled plan and nn forward agree in fp32."""
        graph = from_sequential(model)
        expected = model.forward(x, training=False)
        np.testing.assert_allclose(GraphExecutor(graph).run(x), expected, atol=1e-10)
        np.testing.assert_allclose(CompiledExecutor(graph).run(x), expected, atol=1e-9, rtol=1e-9)

    @pytest.mark.parametrize("model,x", ZOO, ids=ZOO_IDS)
    def test_matches_reference_after_lowering(self, model, x):
        """Compiled fused graphs equal the re-expanded reference execution."""
        lowered = PassPipeline.standard_inference().run(from_sequential(model))
        ref = GraphExecutor(expand_fused_activations(lowered)).run(x)
        np.testing.assert_allclose(CompiledExecutor(lowered).run(x), ref, atol=1e-9, rtol=1e-9)

    @pytest.mark.parametrize("model,x", ZOO, ids=ZOO_IDS)
    @pytest.mark.parametrize(
        "quant",
        [
            dict(bits=8),
            dict(bits=4, per_channel=True),
            dict(bits=8, scheme="asymmetric"),
            dict(bits=8, activation_bits=8),
        ],
        ids=["int8", "int4-perchannel", "int8-asym", "int8-actquant"],
    )
    def test_matches_reference_quantized(self, model, x, quant):
        """Quantization annotations produce identical outputs on both engines."""
        lowered = annotate_quantization(
            PassPipeline.standard_inference().run(from_sequential(model)), **quant
        )
        ref = GraphExecutor(expand_fused_activations(lowered)).run(x)
        np.testing.assert_allclose(CompiledExecutor(lowered).run(x), ref, atol=1e-9, rtol=1e-9)

    def test_pre_and_postprocessing_nodes(self):
        model = make_mlp(6, 3, hidden=(8,), seed=9)
        graph = insert_postprocessing(
            insert_preprocessing(from_sequential(model), mean=0.5, std=2.0), kind="softmax"
        )
        x = RNG.normal(size=(12, 6))
        np.testing.assert_allclose(
            CompiledExecutor(graph).run(x), GraphExecutor(graph).run(x), atol=1e-9, rtol=1e-9
        )

    def test_misc_ops_kernels(self):
        """Ops not emitted by from_sequential (add/mul/threshold/argmax/...)."""
        nodes = [
            GraphNode("norm", "normalize", {"mean": 1.0, "std": 2.0}),
            GraphNode("mul", "mul", {"constant": 3.0}),
            GraphNode("add", "add", {"constant": -0.5}),
            GraphNode("quant", "quantize", {"bits": 8}),
            GraphNode("deq", "dequantize"),
            GraphNode("thr", "threshold", {"value": 0.1}),
            GraphNode("arg", "argmax"),
        ]
        graph = GraphIR(nodes, (5,))
        x = RNG.normal(size=(13, 5))
        np.testing.assert_allclose(CompiledExecutor(graph).run(x), GraphExecutor(graph).run(x))

    def test_reshape_and_avgpool(self):
        nodes = [
            GraphNode("reshape", "reshape", {"shape": (4, 4, 2)}),
            GraphNode("pool", "avgpool2d", {"pool_size": 2}),
            GraphNode("flat", "flatten"),
        ]
        graph = GraphIR(nodes, (32,))
        x = RNG.normal(size=(7, 32))
        np.testing.assert_allclose(
            CompiledExecutor(graph).run(x), GraphExecutor(graph).run(x), atol=1e-12
        )


class TestRunMany:
    def _plan_and_ref(self, quant=None):
        model = make_tiny_cnn((10, 10, 1), 4, filters=(4,), dense_width=8, seed=7)
        lowered = PassPipeline.standard_inference().run(from_sequential(model))
        if quant:
            lowered = annotate_quantization(lowered, **quant)
        return CompiledExecutor(lowered), GraphExecutor(expand_fused_activations(lowered))

    def test_stacked_windows_match_per_window_reference(self):
        plan, ref = self._plan_and_ref(dict(bits=8))
        windows = [RNG.normal(size=(n, 10, 10, 1)) for n in (3, 1, 5, 2)]
        outs = plan.run_many(windows)
        assert len(outs) == len(windows)
        for w, out in zip(windows, outs):
            np.testing.assert_allclose(out, ref.run(w), atol=1e-9, rtol=1e-9)

    def test_empty_windows_and_empty_list(self):
        plan, _ = self._plan_and_ref()
        assert plan.run_many([]) == []
        windows = [np.empty((0, 10, 10, 1)), RNG.normal(size=(2, 10, 10, 1)), np.empty((0, 10, 10, 1))]
        outs = plan.run_many(windows)
        assert outs[0].shape == (0, 4) and outs[2].shape == (0, 4)
        assert outs[1].shape == (2, 4)

    def test_activation_quant_windows_keep_per_window_statistics(self):
        """Data-dependent quantization must not leak across stacked windows."""
        plan, ref = self._plan_and_ref(dict(bits=8, activation_bits=8))
        assert not plan.stacking_exact
        windows = [RNG.normal(size=(2, 10, 10, 1)), 100.0 * RNG.normal(size=(2, 10, 10, 1))]
        outs = plan.run_many(windows)
        for w, out in zip(windows, outs):
            np.testing.assert_allclose(out, ref.run(w), atol=1e-9, rtol=1e-9)


    def test_chunked_run_equals_single_batch(self):
        model = make_mlp(8, 3, hidden=(6,), seed=11)
        graph = from_sequential(model)
        x = RNG.normal(size=(700, 8))
        small = CompiledExecutor(graph, chunk_size=64).run(x)
        np.testing.assert_allclose(small, CompiledExecutor(graph, chunk_size=10**9).run(x), atol=1e-12)
        np.testing.assert_allclose(small, model.forward(x), atol=1e-9, rtol=1e-9)

    def test_workspace_reuse_across_batch_sizes(self):
        plan, ref = self._plan_and_ref()
        for n in (4, 9, 4, 1):
            x = RNG.normal(size=(n, 10, 10, 1))
            np.testing.assert_allclose(plan.run(x), ref.run(x), atol=1e-9, rtol=1e-9)
        assert plan.workspace_bytes() > 0

    def test_outputs_detached_from_plan_buffers(self):
        """A later run must not corrupt results handed out earlier."""
        plan, _ = self._plan_and_ref()
        x1 = RNG.normal(size=(3, 10, 10, 1))
        out1 = plan.run(x1)
        snapshot = out1.copy()
        plan.run(RNG.normal(size=(3, 10, 10, 1)))
        np.testing.assert_array_equal(out1, snapshot)

    def test_empty_batch(self):
        plan, _ = self._plan_and_ref()
        assert plan.run(np.empty((0, 10, 10, 1))).shape == (0, 4)

    def test_gemm_recording(self):
        plan, _ = self._plan_and_ref()
        x = RNG.normal(size=(4, 10, 10, 1))
        out, gemms = plan.run(x, record_gemms=True)
        np.testing.assert_allclose(out, plan.run(x), atol=1e-12)
        assert len(gemms) == plan.n_gemm_steps == 3  # conv + 2 dense
        for a, b, c in gemms:
            np.testing.assert_allclose(a @ b, c, atol=1e-9, rtol=1e-9)


class TestActivationCalibration:
    """Satellite: calibrated static-range activation quantization makes
    ``activation_bits`` / ``quantize`` graphs stackable in ``run_many``."""

    def _quant_graph(self, **quant):
        model = make_tiny_cnn((10, 10, 1), 4, filters=(4,), dense_width=8, seed=7)
        lowered = PassPipeline.standard_inference().run(from_sequential(model))
        return annotate_quantization(lowered, **quant)

    def test_calibration_batch_reproduces_dynamic_oracle_bitwise(self):
        """Static ranges recorded on X equal X's own dynamic ranges, so the
        calibrated plan is bit-identical to the dynamic plan on X."""
        graph = self._quant_graph(bits=8, activation_bits=8)
        x = RNG.normal(size=(12, 10, 10, 1))
        dynamic = CompiledExecutor(graph).run(x)
        calibrated = CompiledExecutor(graph, calibration_data=x)
        assert calibrated.stacking_exact
        assert len(calibrated.quant_sites) == 3  # conv + 2 dense
        assert set(calibrated.activation_ranges) == set(calibrated.quant_sites)
        np.testing.assert_array_equal(calibrated.run(x), dynamic)

    def test_calibrated_run_many_stacks_exactly(self):
        graph = self._quant_graph(bits=8, activation_bits=8)
        cal = RNG.normal(size=(32, 10, 10, 1))
        plan = CompiledExecutor(graph, calibration_data=cal)
        windows = [RNG.normal(size=(n, 10, 10, 1)) for n in (3, 1, 5, 2)]
        outs = plan.run_many(windows)
        # Stacked execution must equal per-window static execution exactly —
        # no quantization statistics leak across windows any more.
        for w, out in zip(windows, outs):
            np.testing.assert_array_equal(out, plan.run(w))

    def test_static_vs_dynamic_error_bound(self):
        """Documented bound for one quant site: with a calibration range R
        covering the batch's own range M, each quantizer rounds with at most
        half its step, so |static(x) - dynamic(x)| <= (R + M) / (2 * qmax)
        elementwise (no clipping occurs when R >= M)."""
        from repro.optimize.quantization import static_fake_quantize

        x = RNG.normal(size=5000) * 3.0
        batch_max = float(np.abs(x).max())
        qmax = 2**7 - 1
        for calibrated_range in (batch_max, 1.5 * batch_max, 4.0 * batch_max):
            static = static_fake_quantize(x, 8, calibrated_range)
            dynamic = _fake_quantize(x, 8)
            bound = (calibrated_range + batch_max) / (2.0 * qmax) + 1e-12
            assert np.max(np.abs(static - dynamic)) <= bound
        # Exactly-covering calibration is bit-identical to the dynamic path.
        np.testing.assert_array_equal(static_fake_quantize(x, 8, batch_max), _fake_quantize(x, 8))
        # Out-of-range values clip to the calibrated grid's edges
        # (asymmetric signed grid: +qmax vs -(qmax+1) codes).
        narrow = static_fake_quantize(x, 8, batch_max / 2.0)
        scale = batch_max / 2.0 / qmax
        assert np.max(narrow) <= qmax * scale + 1e-12
        assert np.min(narrow) >= -(qmax + 1) * scale - 1e-12

    def test_quantize_node_graph_stackable_after_calibration(self):
        nodes = [
            GraphNode("mul", "mul", {"constant": 2.0}),
            GraphNode("quant", "quantize", {"bits": 8}),
        ]
        graph = GraphIR(nodes, (5,))
        cal = RNG.normal(size=(64, 5))
        plan = CompiledExecutor(graph, calibration_data=cal)
        assert plan.stacking_exact and plan.quant_sites == ["quant"]
        np.testing.assert_array_equal(plan.run(cal), CompiledExecutor(graph).run(cal))
        windows = [RNG.normal(size=(n, 5)) for n in (2, 4)]
        for w, out in zip(windows, plan.run_many(windows)):
            np.testing.assert_array_equal(out, plan.run(w))

    def test_unquantized_graph_calibration_is_noop(self):
        model = make_mlp(6, 3, hidden=(8,), seed=2)
        plan = CompiledExecutor(from_sequential(model))
        assert plan.calibrate_activations(RNG.normal(size=(4, 6))) == {}
        assert plan.stacking_exact

    def test_empty_calibration_batch_rejected(self):
        graph = self._quant_graph(bits=8, activation_bits=8)
        with pytest.raises(ValueError, match="calibration batch"):
            CompiledExecutor(graph, calibration_data=np.empty((0, 10, 10, 1)))

    def test_fleet_executor_calibration_passthrough(self):
        base = make_mlp(8, 4, hidden=(12,), seed=13)
        lowered = PassPipeline.standard_inference().run(from_sequential(base))
        graphs = {
            "fp32": lowered,
            "int8-act": annotate_quantization(lowered, bits=8, activation_bits=8),
        }
        cal = RNG.normal(size=(32, 8))
        fleet = FleetExecutor.from_graphs(graphs, calibration_data=cal)
        assert fleet.plans["int8-act"].stacking_exact
        inputs = {"a": RNG.normal(size=(3, 8)), "b": RNG.normal(size=(2, 8))}
        outputs = fleet.run_fleet({"a": "int8-act", "b": "fp32"}, inputs)
        np.testing.assert_array_equal(outputs["a"], fleet.plans["int8-act"].run(inputs["a"]))


class TestFleetExecutor:
    def _variants(self):
        base = make_mlp(8, 4, hidden=(12, 6), seed=13, name="fleet-base")
        lowered = PassPipeline.standard_inference().run(from_sequential(base))
        return base, {
            "fp32": lowered,
            "int8": annotate_quantization(lowered, bits=8),
            "int4": annotate_quantization(lowered, bits=4),
        }

    def test_heterogeneous_sweep_matches_reference(self):
        _, graphs = self._variants()
        fleet = FleetExecutor.from_graphs(graphs)
        device_ids = [f"dev-{i}" for i in range(12)]
        variants = list(graphs)
        assignments = {d: variants[i % 3] for i, d in enumerate(device_ids)}
        inputs = {d: RNG.normal(size=(1 + i % 4, 8)) for i, d in enumerate(device_ids)}
        outputs = fleet.run_fleet(assignments, inputs)
        assert set(outputs) == set(device_ids)
        refs = {name: GraphExecutor(expand_fused_activations(g)) for name, g in graphs.items()}
        for d in device_ids:
            np.testing.assert_allclose(
                outputs[d], refs[assignments[d]].run(inputs[d]), atol=1e-9, rtol=1e-9
            )

    def test_from_models_and_partial_coverage(self):
        from repro.optimize import QuantizationConfig, magnitude_prune, quantize_model

        base = make_mlp(6, 3, hidden=(8,), seed=17, name="m")
        models = {
            "fp32": base,
            "int8": quantize_model(base, QuantizationConfig(bits=8)),
            "pruned": magnitude_prune(base, 0.5),
        }
        fleet = FleetExecutor.from_models(models)
        assignments = {"a": "fp32", "b": "pruned", "c": "int8", "ghost": "int8"}
        inputs = {"a": RNG.normal(size=(2, 6)), "b": RNG.normal(size=(3, 6)), "c": RNG.normal(size=(1, 6))}
        outputs = fleet.run_fleet(assignments, inputs)
        assert set(outputs) == {"a", "b", "c"}  # no input for "ghost"
        np.testing.assert_allclose(outputs["b"], models["pruned"].forward(inputs["b"]), atol=1e-9, rtol=1e-9)

    def test_unknown_variant_raises(self):
        _, graphs = self._variants()
        fleet = FleetExecutor.from_graphs(graphs)
        with pytest.raises(KeyError, match="warp9"):
            fleet.run_fleet({"d": "warp9"}, {"d": np.zeros((1, 8))})


class TestFakeQuantizeEdgeCases:
    """Satellite fix: integer zero-point, hi > lo guard, subnormals, bits=1."""

    def test_asymmetric_zero_point_is_integer_and_zero_exact(self):
        x = RNG.normal(size=200) * 3.0
        x[::7] = 0.0
        out = _fake_quantize(x, 8, symmetric=False)
        # real zero must be exactly representable (integer zero-point)
        assert np.all(out[::7] == 0.0)

    @pytest.mark.parametrize("c", [0.7, -1.3, 0.0, 42.0])
    def test_constant_tensors_survive_roundtrip(self, c):
        x = np.full(37, c)
        np.testing.assert_allclose(_fake_quantize(x, 8, symmetric=False), x, rtol=1e-12, atol=1e-300)
        np.testing.assert_allclose(_fake_quantize(x, 8, symmetric=True), x, rtol=1e-12, atol=1e-300)

    @pytest.mark.parametrize("symmetric", [True, False])
    def test_subnormal_inputs_stay_finite(self, symmetric):
        tiny = np.array([5e-324, 0.0, -5e-324, 3e-320])
        out = _fake_quantize(tiny, 8, symmetric=symmetric)
        assert np.all(np.isfinite(out))

    def test_bits_one(self):
        x = np.array([-2.0, -0.1, 0.0, 0.4, 3.0])
        sym = _fake_quantize(x, 1, symmetric=True)
        assert set(np.round(sym / 3.0, 12)) <= {-1.0, 0.0, 1.0}
        asym = _fake_quantize(x, 1, symmetric=False)
        assert len(np.unique(asym)) <= 2
        assert np.all(np.isfinite(asym))

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            _fake_quantize(np.ones(3), 0)
        x = RNG.normal(size=5)
        assert _fake_quantize(x, 32) is x

    def test_error_bounded_by_half_step_asymmetric(self):
        x = RNG.uniform(0.5, 4.0, size=300)  # all-positive: range nudged to include 0
        qmax = 2**8 - 1
        scale = (x.max() - 0.0) / qmax
        out = _fake_quantize(x, 8, symmetric=False)
        # rounded zero-point costs at most half a step on top of rounding
        assert np.max(np.abs(out - x)) <= scale * 1.0 + 1e-12


def test_dense_on_unflattened_input_rejected_at_compile_time():
    """The IR's dense shape inference assumes rank-1 input; refuse the rest."""
    nodes = [GraphNode("d", "dense", {"units": 3}, {"W": np.zeros((4, 3)), "b": np.zeros(3)})]
    graph = GraphIR(nodes, (2, 2, 1))
    with pytest.raises(NotImplementedError, match="flatten"):
        CompiledExecutor(graph)
