"""Property-based tests: compiler passes preserve graph semantics.

Random dense/batchnorm/activation/dropout chains are generated with
hypothesis; every pass of ``PassPipeline.standard_inference()`` (and the
composed pipeline) must preserve the graph's numeric semantics, including
``fold_batchnorm`` on near-zero variances and the
``fuse_activations``/``expand_fused_activations`` round-trip.  The compiled
engine is held to the same oracle on every generated graph.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exchange import (
    CompiledExecutor,
    GraphExecutor,
    GraphIR,
    GraphNode,
    PassPipeline,
    eliminate_dropout,
    expand_fused_activations,
    fold_batchnorm,
    fuse_activations,
)

ACTIVATIONS = ("relu", "relu6", "leaky_relu", "sigmoid", "tanh", "hard_sigmoid", "linear")


@st.composite
def dense_chain_graphs(draw):
    """A random dense/BN/activation/dropout chain plus a matching input batch."""
    in_dim = draw(st.integers(2, 8))
    n_blocks = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    nodes = []
    dim = in_dim
    if draw(st.booleans()):
        # Leading BatchNorm: not foldable (no preceding compute node).
        nodes.append(_bn_node("bn_head", dim, rng, tiny_var=draw(st.booleans())))
    for i in range(n_blocks):
        units = draw(st.integers(1, 8))
        use_bias = draw(st.booleans())
        params = {"W": rng.normal(size=(dim, units))}
        if use_bias:
            params["b"] = rng.normal(size=units)
        nodes.append(GraphNode(f"dense_{i}", "dense", {"units": units, "use_bias": use_bias}, params))
        dim = units
        if draw(st.booleans()):
            nodes.append(_bn_node(f"bn_{i}", dim, rng, tiny_var=draw(st.booleans())))
        if draw(st.booleans()):
            nodes.append(GraphNode(f"act_{i}", draw(st.sampled_from(ACTIVATIONS))))
        if draw(st.booleans()):
            nodes.append(GraphNode(f"drop_{i}", "dropout", {"rate": 0.5}))
    graph = GraphIR(nodes, (in_dim,), name="hyp_graph")
    x = rng.normal(size=(draw(st.integers(1, 6)), in_dim))
    return graph, x


def _bn_node(name: str, dim: int, rng: np.random.Generator, tiny_var: bool) -> GraphNode:
    var = rng.uniform(0.0, 1e-12, size=dim) if tiny_var else rng.uniform(0.5, 2.0, size=dim)
    return GraphNode(
        name,
        "batchnorm",
        {"eps": 1e-5},
        {
            "gamma": rng.normal(size=dim),
            "beta": rng.normal(size=dim),
            "running_mean": rng.normal(size=dim),
            "running_var": var,
        },
    )


def _reference(graph: GraphIR, x: np.ndarray) -> np.ndarray:
    """Semantic oracle: reference interpreter over re-expanded activations."""
    return GraphExecutor(expand_fused_activations(graph), apply_quantization=False).run(x)


@settings(max_examples=40, deadline=None)
@given(dense_chain_graphs())
def test_each_standard_pass_preserves_semantics(case):
    """eliminate_dropout, fold_batchnorm and fuse_activations are all no-ops numerically."""
    graph, x = case
    expected = _reference(graph, x)
    for graph_pass in PassPipeline.standard_inference().passes:
        out = _reference(graph_pass(graph), x)
        np.testing.assert_allclose(out, expected, rtol=1e-8, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(dense_chain_graphs())
def test_standard_pipeline_preserves_semantics(case):
    graph, x = case
    lowered = PassPipeline.standard_inference().run(graph)
    np.testing.assert_allclose(_reference(lowered, x), _reference(graph, x), rtol=1e-8, atol=1e-8)
    assert "dropout" not in lowered.op_types()


@settings(max_examples=40, deadline=None)
@given(dense_chain_graphs())
def test_fold_batchnorm_folds_and_stays_finite(case):
    """Folding removes every BN behind a compute node, even with var ~ 0."""
    graph, x = case
    folded = fold_batchnorm(graph)
    foldable = {
        node.name
        for prev, node in zip(graph.nodes, graph.nodes[1:])
        if node.op_type == "batchnorm" and prev.op_type in ("conv2d", "dense", "depthwise_conv2d")
    }
    assert not foldable & {n.name for n in folded.nodes}
    out = _reference(folded, x)
    assert np.all(np.isfinite(out))
    np.testing.assert_allclose(out, _reference(graph, x), rtol=1e-8, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(dense_chain_graphs())
def test_fuse_expand_roundtrip(case):
    """expand_fused_activations inverts fuse_activations exactly."""
    graph, x = case
    clean = eliminate_dropout(graph)
    fused = fuse_activations(clean)
    expanded = expand_fused_activations(fused)
    assert expanded.op_types() == clean.op_types()
    assert not any("fused_activation" in n.attrs for n in expanded.nodes)
    np.testing.assert_allclose(
        GraphExecutor(expanded, apply_quantization=False).run(x),
        GraphExecutor(clean, apply_quantization=False).run(x),
        rtol=1e-10,
        atol=1e-10,
    )


@settings(max_examples=40, deadline=None)
@given(dense_chain_graphs())
def test_compiled_executor_matches_oracle_on_random_graphs(case):
    """The compiled engine tracks the oracle across the whole random family."""
    graph, x = case
    lowered = PassPipeline.standard_inference().run(graph)
    np.testing.assert_allclose(
        CompiledExecutor(lowered).run(x), _reference(lowered, x), rtol=1e-8, atol=1e-8
    )
