"""Minimal PEP 517 build backend for fully offline environments.

The evaluation environment for this reproduction has ``setuptools`` but not
the ``wheel`` package and no network access, which breaks both build
isolation (pip cannot download ``setuptools``/``wheel``) and setuptools'
PEP 660 editable-install path (its ``dist_info``/``editable_wheel`` commands
import ``bdist_wheel`` from the missing ``wheel`` distribution).

This backend is pure standard library.  It builds:

* a regular wheel (``build_wheel``) by zipping ``src/repro`` plus generated
  ``*.dist-info`` metadata, and
* an editable wheel (``build_editable``) containing only a ``.pth`` file that
  points at ``src/``, which is the classic development-install mechanism.

It is intentionally tiny and project-specific — it reads the name/version/
dependencies it needs directly from ``pyproject.toml``.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - fallback for very old interpreters
    tomllib = None

_ROOT = os.path.dirname(os.path.abspath(__file__))


def _project_meta() -> dict:
    path = os.path.join(_ROOT, "pyproject.toml")
    if tomllib is None:
        raise RuntimeError("tomllib unavailable; need Python >= 3.11")
    with open(path, "rb") as fh:
        data = tomllib.load(fh)
    return data["project"]


def _metadata_text(meta: dict) -> str:
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {meta['name']}",
        f"Version: {meta['version']}",
    ]
    if meta.get("description"):
        lines.append(f"Summary: {meta['description']}")
    if meta.get("requires-python"):
        lines.append(f"Requires-Python: {meta['requires-python']}")
    for dep in meta.get("dependencies", []):
        lines.append(f"Requires-Dist: {dep}")
    for extra, deps in (meta.get("optional-dependencies") or {}).items():
        lines.append(f"Provides-Extra: {extra}")
        for dep in deps:
            lines.append(f'Requires-Dist: {dep} ; extra == "{extra}"')
    return "\n".join(lines) + "\n"


_WHEEL_TEXT = (
    "Wheel-Version: 1.0\n"
    "Generator: offline-build-backend (0.1)\n"
    "Root-Is-Purelib: true\n"
    "Tag: py3-none-any\n"
)


def _record_entry(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=").decode()
    return f"{name},sha256={digest},{len(data)}"


def _write_wheel(wheel_path: str, files: dict) -> None:
    """Write a wheel (zip) from ``{archive_name: bytes}`` plus a RECORD."""
    dist_info = next(n.split("/")[0] for n in files if n.endswith("METADATA"))
    record_name = f"{dist_info}/RECORD"
    record_lines = [_record_entry(name, data) for name, data in files.items()]
    record_lines.append(f"{record_name},,")
    files = dict(files)
    files[record_name] = ("\n".join(record_lines) + "\n").encode()
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, data in files.items():
            zf.writestr(name, data)


def _dist_info_files(meta: dict) -> dict:
    dist_info = f"{meta['name']}-{meta['version']}.dist-info"
    return {
        f"{dist_info}/METADATA": _metadata_text(meta).encode(),
        f"{dist_info}/WHEEL": _WHEEL_TEXT.encode(),
        f"{dist_info}/top_level.txt": b"repro\n",
    }


# ---------------------------------------------------------------------------
# PEP 517 / PEP 660 hooks
# ---------------------------------------------------------------------------

def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    meta = _project_meta()
    wheel_name = f"{meta['name']}-{meta['version']}-py3-none-any.whl"
    files = _dist_info_files(meta)
    pkg_root = os.path.join(_ROOT, "src")
    for dirpath, _dirnames, filenames in os.walk(os.path.join(pkg_root, "repro")):
        for fname in sorted(filenames):
            if fname.endswith((".pyc", ".pyo")) or "__pycache__" in dirpath:
                continue
            full = os.path.join(dirpath, fname)
            rel = os.path.relpath(full, pkg_root).replace(os.sep, "/")
            with open(full, "rb") as fh:
                files[rel] = fh.read()
    _write_wheel(os.path.join(wheel_directory, wheel_name), files)
    return wheel_name


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    meta = _project_meta()
    wheel_name = f"{meta['name']}-{meta['version']}-py3-none-any.whl"
    files = _dist_info_files(meta)
    src_path = os.path.join(_ROOT, "src")
    files[f"__editable__.{meta['name']}.pth"] = (src_path + "\n").encode()
    _write_wheel(os.path.join(wheel_directory, wheel_name), files)
    return wheel_name


def build_sdist(sdist_directory, config_settings=None):  # pragma: no cover - unused offline
    import tarfile

    meta = _project_meta()
    base = f"{meta['name']}-{meta['version']}"
    sdist_name = f"{base}.tar.gz"
    path = os.path.join(sdist_directory, sdist_name)
    with tarfile.open(path, "w:gz") as tf:
        for entry in ("pyproject.toml", "README.md", "src"):
            full = os.path.join(_ROOT, entry)
            if os.path.exists(full):
                tf.add(full, arcname=f"{base}/{entry}")
    return sdist_name
